"""The basic-block engine: caching, invalidation, and exact identity.

Every behavioural test here is differential: the same image runs with the
block engine (machines built normally) and without it
(``blocks_disabled()``), and the complete observable outcome — registers,
pc, cycles, instret, the mtime-stamped trap event stream, scheduler
interleaving — must be byte-identical.  The engine is an optimization;
any divergence is a bug by definition.
"""

import dataclasses

import pytest

from repro import perf
from repro.hart.binary import BinaryProgram
from repro.hart.blocks import blocks_disabled
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa import constants as c
from repro.isa.asm import Assembler
from repro.smp import SmpScheduler
from repro.spec.platform import VISIONFIVE2

REGION = Region("firmware", 0x8000_0000, 0x10_0000)
MAILBOX = REGION.base + 0xF000


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf.clear_caches()
    perf.set_caches_enabled(True)
    yield
    perf.clear_caches()
    perf.set_caches_enabled(True)


def _machine(blocks: bool, platform=VISIONFIVE2) -> Machine:
    if blocks:
        return Machine(platform)
    with blocks_disabled():
        return Machine(platform)


def _register(machine: Machine, image: bytes) -> BinaryProgram:
    program = BinaryProgram("image", REGION, machine, image)
    machine.register(program)
    return program


def _outcome(machine: Machine, program: BinaryProgram) -> dict:
    hart = machine.harts[0]
    return {
        "halt": machine.halt_reason,
        "pc": hart.state.pc,
        "xregs": tuple(hart.state.xregs),
        "cycles": hart.cycles,
        "instret": hart.instret,
        "machine_cycles": machine.cycles,
        "mtime": machine.read_mtime(),
        "mcycle": hart.state.csr._simple.get(c.CSR_MCYCLE),
        "minstret": hart.state.csr._simple.get(c.CSR_MINSTRET),
        "steps": program.steps,
        "traps": tuple(
            (e.hart, e.cause, e.is_interrupt, e.mtime)
            for e in machine.stats.events
        ),
    }


def _run(image: bytes, blocks: bool) -> tuple[dict, Machine]:
    machine = _machine(blocks)
    program = _register(machine, image)
    machine.boot(entry=REGION.base)
    return _outcome(machine, program), machine


def _alu_loop_image(iterations: int = 50, body: int = 24) -> bytes:
    asm = Assembler(base=REGION.base)
    asm.li("a0", iterations)
    asm.li("a1", 0)
    asm.label("loop")
    for i in range(body):
        asm.addi("a1", "a1", 1)
        asm.xori("t0", "a1", 0x5A + (i & 7))
    asm.addi("a0", "a0", -1)
    asm.bne("a0", "zero", "loop")
    asm.ebreak()
    return asm.binary()


class TestBlockCaching:
    def test_blocks_are_cached_and_hit(self):
        outcome, machine = _run(_alu_loop_image(), blocks=True)
        engine = machine.blocks
        assert engine.hits > 0
        assert 0 < engine.misses < engine.hits
        assert outcome["halt"] == "image: ebreak"

    def test_identity_with_single_step_engine(self):
        on, _ = _run(_alu_loop_image(), blocks=True)
        off, machine = _run(_alu_loop_image(), blocks=False)
        assert machine.blocks is None
        assert on == off

    def test_stats_provider_registered(self):
        _, machine = _run(_alu_loop_image(), blocks=True)
        stats = perf.cache_stats(owner=machine)
        assert stats["hart.blocks"]["hits"] == machine.blocks.hits

    def test_caches_disabled_bypasses_engine(self):
        machine = _machine(blocks=True)
        program = _register(machine, _alu_loop_image())
        with perf.caches_disabled():
            machine.boot(entry=REGION.base)
        assert machine.blocks.hits == 0
        on, _ = _run(_alu_loop_image(), blocks=True)
        assert _outcome(machine, program) == on

    def test_fault_injector_disables_engine(self):
        from repro.faults import FaultInjector, FaultPlan

        machine = _machine(blocks=True)
        program = _register(machine, _alu_loop_image())
        machine.install_fault_injector(FaultInjector(FaultPlan(name="quiet")))
        machine.boot(entry=REGION.base)
        assert program.ebreak_hit
        assert machine.blocks.hits == 0

    def test_single_step_flag_disables_engine(self):
        machine = _machine(blocks=True)
        program = _register(machine, _alu_loop_image())
        machine.blocks.single_step = True
        machine.boot(entry=REGION.base)
        assert program.ebreak_hit
        assert machine.blocks.hits == 0


PATCH_TARGET = REGION.base + 0x200


def _self_modifying_image() -> bytes:
    """The loop patches its own downstream instruction every iteration.

    The instruction at ``PATCH_TARGET`` alternates between
    ``addi a1, a1, 1`` and ``addi a1, a1, 3`` — each store lands inside a
    cached block, so the engine must invalidate and rebuild, and the
    final ``a1`` proves the rewritten bytes (not a stale decoded run)
    executed.
    """
    word_add1 = Assembler().addi("a1", "a1", 1).assemble()[-1]
    word_add3 = Assembler().addi("a1", "a1", 3).assemble()[-1]
    asm = Assembler(base=REGION.base)
    asm.li("a0", 40)
    asm.li("a1", 0)
    asm.li("t0", word_add1)
    asm.li("t1", word_add3)
    asm.li("t2", PATCH_TARGET)
    asm.label("loop")
    for _ in range(8):
        asm.addi("a2", "a2", 1)
    # Swap t0/t1, then store the patch word over PATCH_TARGET.
    asm.xor("t0", "t0", "t1")
    asm.xor("t1", "t0", "t1")
    asm.xor("t0", "t0", "t1")
    asm.sw("t1", "t2", 0)
    for _ in range(8):
        asm.addi("a3", "a3", 1)
    while asm.current_address < PATCH_TARGET:
        asm.addi("a4", "a4", 1)
    asm.addi("a1", "a1", 1)  # the patched slot
    asm.addi("a0", "a0", -1)
    asm.bne("a0", "zero", "loop")
    asm.ebreak()
    return asm.binary()


class TestInvalidation:
    def test_self_modifying_code_executes_new_bytes(self):
        image = _self_modifying_image()
        on, machine = _run(image, blocks=True)
        off, _ = _run(image, blocks=False)
        assert on == off
        assert machine.blocks.invalidations > 0
        # 40 iterations; the store flips the slot to +3 before it first
        # runs, then alternates: 20*(3+1) = 80.
        assert on["xregs"][11] == 80

    def test_identical_byte_store_keeps_blocks(self):
        image = _self_modifying_image()
        machine = _machine(blocks=True)
        _register(machine, image)
        machine.boot(entry=REGION.base)
        baseline = machine.blocks.invalidations
        current = machine.ram.read(PATCH_TARGET, 4)
        machine.ram.write(PATCH_TARGET, 4, current)
        assert machine.blocks.invalidations == baseline

    def test_snapshot_restore_invalidates(self):
        from repro.snapshot import capture, restore

        machine = _machine(blocks=True)
        _register(machine, _alu_loop_image())
        machine.boot(entry=REGION.base)
        assert machine.blocks._blocks
        checkpoint = capture(machine)
        restore(machine, checkpoint)
        assert not machine.blocks._blocks
        assert not machine.ram.code_pages

    def test_load_image_invalidates(self):
        machine = _machine(blocks=True)
        _register(machine, _alu_loop_image())
        machine.boot(entry=REGION.base)
        assert machine.blocks._blocks
        machine.ram.load_image(REGION.base, b"\x00" * 16)
        assert not machine.blocks._blocks


def _timer_image() -> bytes:
    """A long ALU run with one timer interrupt landing mid-run.

    The handler disarms the timer and counts into ``s0``; the trap's
    mtime stamp (recorded by ``TrapStats``) pins down *exactly* when the
    interrupt was delivered, so a block that over-batched cycles past
    the deadline would show up as a shifted stamp.
    """
    mtimecmp = Machine(VISIONFIVE2).clint.mtimecmp_address(0)
    asm = Assembler(base=REGION.base)
    asm.li("t0", REGION.base + 0x100)
    asm.csrw(c.CSR_MTVEC, "t0")
    # At 1.5 GHz a VF2 mtime tick is 375 cycles: a deadline of 40 lands
    # ~15k instructions in, deep inside the ALU loop below.
    asm.li("t1", 40)
    asm.li("t2", mtimecmp)
    asm.sd("t1", "t2", 0)
    asm.li("t3", c.MIP_MTIP)
    asm.csrs(c.CSR_MIE, "t3")
    asm.csrrsi("zero", c.CSR_MSTATUS, c.MSTATUS_MIE)
    asm.li("a0", 500)
    asm.label("loop")
    for _ in range(30):
        asm.addi("a1", "a1", 1)
    asm.addi("a0", "a0", -1)
    asm.bne("a0", "zero", "loop")
    asm.ebreak()
    while asm.current_address < REGION.base + 0x100:
        asm.nop()
    # Handler: count the tick, push mtimecmp to the far future, return.
    asm.addi("s0", "s0", 1)
    asm.li("t4", 1 << 40)
    asm.li("t5", mtimecmp)
    asm.sd("t4", "t5", 0)
    asm.mret()
    return asm.binary()


class TestTimerExactness:
    def test_timer_interrupt_mid_block_is_identical(self):
        image = _timer_image()
        on, machine = _run(image, blocks=True)
        off, _ = _run(image, blocks=False)
        assert on == off
        assert machine.harts[0].state.get_xreg(8) == 1  # s0: one tick
        interrupts = [t for t in on["traps"] if t[2]]
        assert len(interrupts) == 1
        assert machine.blocks.hits > 0  # engine engaged around the trap


H0_LOOP = REGION.base + 0x40
H0_TARGET = H0_LOOP + 4 * 12
H1_ENTRY = REGION.base + 0x800


def _smp_image(patch: bool = False) -> bytes:
    """Two harts in one image: hart 0 consumes a mailbox hart 1 produces.

    Hart 0 (at the region base) accumulates the mailbox value between
    ALU runs — its final ``s1`` fingerprints the exact interleaving.
    Hart 1 (at ``H1_ENTRY``) increments and publishes the mailbox; with
    ``patch`` it also flips one of hart 0's block instructions between
    two encodings every round, exercising cross-hart invalidation while
    hart 0 may be sitting inside the block.
    """
    word_a = Assembler().addi("a2", "a2", 1).assemble()[-1]
    word_b = Assembler().addi("a2", "a2", 2).assemble()[-1]
    asm = Assembler(base=REGION.base)
    asm.li("gp", MAILBOX)
    asm.li("a0", 120)
    while asm.current_address < H0_LOOP:
        asm.nop()
    asm.label("h0_loop")
    for _ in range(12):
        asm.addi("a1", "a1", 1)
    assert asm.current_address == H0_TARGET
    asm.addi("a2", "a2", 1)  # patchable slot
    for _ in range(4):
        asm.addi("a4", "a4", 1)
    asm.ld("t5", "gp", 0)
    asm.add("s1", "s1", "t5")
    asm.addi("a0", "a0", -1)
    asm.bne("a0", "zero", "h0_loop")
    asm.ebreak()
    while asm.current_address < H1_ENTRY:
        asm.nop()
    asm.label("h1")
    asm.li("gp", MAILBOX)
    if patch:
        asm.li("t0", word_a)
        asm.li("t1", word_b)
        asm.li("t2", H0_TARGET)
    asm.label("h1_loop")
    for _ in range(9):
        asm.addi("s2", "s2", 3)
    asm.sd("s2", "gp", 0)
    if patch:
        asm.xor("t0", "t0", "t1")
        asm.xor("t1", "t0", "t1")
        asm.xor("t0", "t0", "t1")
        asm.sw("t1", "t2", 0)
    asm.j("h1_loop")
    return asm.binary()


def _run_smp(image: bytes, blocks: bool, quantum: int, jitter: int,
             seed: int) -> dict:
    platform = dataclasses.replace(VISIONFIVE2, num_harts=2)
    machine = _machine(blocks, platform)
    program = _register(machine, image)
    scheduler = SmpScheduler(machine, quantum=quantum, seed=seed,
                             jitter=jitter)
    machine.harts[1].state.pc = H1_ENTRY
    scheduler.start_hart(machine.harts[1])
    scheduler.boot(entry=REGION.base)
    return {
        "halt": machine.halt_reason,
        "slices": scheduler.slices,
        "sched_steps": tuple(scheduler.steps),
        "xregs": tuple(tuple(h.state.xregs) for h in machine.harts),
        "pcs": tuple(h.state.pc for h in machine.harts),
        "cycles": tuple(h.cycles for h in machine.harts),
        "instret": tuple(h.instret for h in machine.harts),
        "machine_cycles": machine.cycles,
        "steps": program.steps,
        "traps": tuple(
            (e.hart, e.cause, e.is_interrupt, e.mtime)
            for e in machine.stats.events
        ),
        "engine": None if machine.blocks is None else machine.blocks.hits,
    }


class TestSmpIdentity:
    @pytest.mark.parametrize("quantum,jitter,seed", [
        (7, 3, 11),
        (50, 0, 0),
    ])
    def test_interleavings_are_byte_identical(self, quantum, jitter, seed):
        image = _smp_image()
        on = _run_smp(image, True, quantum, jitter, seed)
        off = _run_smp(image, False, quantum, jitter, seed)
        assert on.pop("engine") > 0
        off.pop("engine")
        assert on == off

    def test_cross_hart_code_patch_is_byte_identical(self):
        image = _smp_image(patch=True)
        on = _run_smp(image, True, 7, 3, 11)
        off = _run_smp(image, False, 7, 3, 11)
        on.pop("engine")
        off.pop("engine")
        assert on == off
