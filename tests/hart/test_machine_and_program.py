"""Machine dispatch engine and guest-program framework tests."""

import pytest

from repro.hart.machine import Machine
from repro.hart.program import (
    GuestContext,
    GuestProgram,
    MachineHalted,
    ProtocolError,
    Region,
)
from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2


class HaltingProgram(GuestProgram):
    """Runs a body callable in M-mode, then halts the machine."""

    def __init__(self, machine, body=None, name="prog",
                 base=0x8000_0000, size=0x10_0000):
        super().__init__(name, Region(name, base, size))
        self.machine = machine
        self.body = body or (lambda ctx: None)
        self.trap_log = []

    def boot(self, ctx):
        self.body(ctx)
        self.machine.halt("done")

    def handle_trap(self, ctx):
        cause = ctx.csrr(c.CSR_MCAUSE)
        self.trap_log.append(cause)
        if not cause & c.INTERRUPT_BIT:
            ctx.csrw(c.CSR_MEPC, ctx.csrr(c.CSR_MEPC) + 4)
        else:
            # Ack the timer so the interrupt does not immediately re-fire.
            ctx.store(
                self.machine.clint.mtimecmp_address(ctx.hart.hartid),
                (1 << 64) - 1,
                size=8,
            )
        ctx.mret()


def run_body(body, config=VISIONFIVE2):
    machine = Machine(config)
    program = HaltingProgram(machine, body)
    machine.register(program)
    reason = machine.boot(entry=program.entry_point)
    return machine, program, reason


class TestRegions:
    def test_region_contains(self):
        region = Region("r", 0x1000, 0x100)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)

    def test_register_rejects_overlap(self):
        machine = Machine(VISIONFIVE2)
        machine.register(HaltingProgram(machine))
        with pytest.raises(ValueError):
            machine.register(HaltingProgram(machine, name="other"))

    def test_owner_lookup(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        machine.register(program)
        assert machine.owner_of(0x8000_0000) is program
        assert machine.owner_of(0x9000_0000) is None

    def test_region_named(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        machine.register(program)
        assert machine.region_named("prog") is program.region
        with pytest.raises(KeyError):
            machine.region_named("nope")


class TestDispatch:
    def test_boot_runs_program(self):
        ran = []
        _, _, reason = run_body(lambda ctx: ran.append(True))
        assert ran and reason == "done"

    def test_unowned_pc_raises(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        machine.register(program)
        machine.harts[0].state.pc = 0x9000_0000
        with pytest.raises(ProtocolError):
            machine.dispatch_current(machine.harts[0])

    def test_unexpected_reentry_raises(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        machine.register(program)
        machine.harts[0].state.pc = program.entry_point + 8
        with pytest.raises(ProtocolError):
            machine.dispatch_current(machine.harts[0])

    def test_extra_entry_points(self):
        machine = Machine(VISIONFIVE2)
        hits = []
        program = HaltingProgram(machine)
        program.add_entry(program.entry_point + 0x40, lambda ctx: hits.append(1))
        machine.register(program)
        machine.harts[0].state.pc = program.entry_point + 0x40
        machine.dispatch_current(machine.harts[0])
        assert hits == [1]

    def test_add_entry_outside_region_rejected(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        with pytest.raises(ValueError):
            program.add_entry(0x9000_0000, lambda ctx: None)


class TestGuestContextOps:
    def test_csr_roundtrip(self):
        seen = {}

        def body(ctx):
            ctx.csrw(c.CSR_MSCRATCH, 0xABCD)
            seen["value"] = ctx.csrr(c.CSR_MSCRATCH)

        run_body(body)
        assert seen["value"] == 0xABCD

    def test_csrs_csrc(self):
        seen = {}

        def body(ctx):
            ctx.csrw(c.CSR_MSCRATCH, 0b1100)
            ctx.csrs(c.CSR_MSCRATCH, 0b0011)
            ctx.csrc(c.CSR_MSCRATCH, 0b1000)
            seen["value"] = ctx.csrr(c.CSR_MSCRATCH)

        run_body(body)
        assert seen["value"] == 0b0111

    def test_memory_roundtrip(self):
        seen = {}

        def body(ctx):
            ctx.store(0x8008_0000, 0x1122_3344_5566_7788, size=8)
            seen["full"] = ctx.load(0x8008_0000, size=8)
            seen["byte"] = ctx.load(0x8008_0007, size=1)
            seen["signed"] = ctx.load(0x8008_0000, size=1, signed=True)

        run_body(body)
        assert seen["full"] == 0x1122_3344_5566_7788
        assert seen["byte"] == 0x11
        assert seen["signed"] == ((1 << 64) - 1) & ~0x77  # 0x88 sign-extended

    def test_pc_advances_per_op(self):
        seen = {}

        def body(ctx):
            start = ctx.hart.state.pc
            ctx.csrw(c.CSR_MSCRATCH, 1)  # one instruction
            seen["delta"] = ctx.hart.state.pc - start

        run_body(body)
        assert seen["delta"] == 4

    def test_pc_wraps_within_region(self):
        def body(ctx):
            ctx.hart.state.pc = ctx.program.region.end - 8
            ctx.csrw(c.CSR_MSCRATCH, 1)
            assert ctx.program.region.contains(ctx.hart.state.pc)

        run_body(body)

    def test_compute_charges_cycles(self):
        machine, _, _ = run_body(lambda ctx: ctx.compute(10_000))
        assert machine.cycles >= 10_000

    def test_instruction_materialized_in_ram(self):
        seen = {}

        def body(ctx):
            pc = ctx.hart.state.pc
            ctx.csrw(c.CSR_MSCRATCH, 1)
            seen["word"] = ctx.machine.ram.read(pc, 4)

        machine, _, _ = run_body(body)
        from repro.isa.decoder import decode

        assert decode(seen["word"]).mnemonic == "csrrw"

    def test_ecall_sets_arguments(self):
        seen = {}

        class EcallProgram(HaltingProgram):
            def handle_trap(self, ctx):
                seen["a0"] = ctx.trap_reg(10)
                seen["a7"] = ctx.trap_reg(17)
                ctx.set_trap_reg(10, 0x42)
                ctx.csrw(c.CSR_MEPC, ctx.csrr(c.CSR_MEPC) + 4)
                ctx.mret()

        machine = Machine(VISIONFIVE2)

        def body(ctx):
            # Drop to S-mode so the ecall traps back into the program.
            ctx.csrw(c.CSR_MTVEC, program.trap_vector)
            mstatus = ctx.csrr(c.CSR_MSTATUS)
            ctx.csrw(
                c.CSR_MSTATUS,
                (mstatus & ~c.MSTATUS_MPP) | (int(c.S_MODE) << 11),
            )
            ctx.csrw(c.CSR_MEPC, ctx.hart.state.pc + 4)
            ctx.mret()
            result, _ = ctx.ecall(7, a7=0x10)
            seen["result"] = result
            machine.halt("done")

        program = EcallProgram(machine, body)
        machine.register(program)
        machine.boot(entry=program.entry_point)
        assert seen == {"a0": 7, "a7": 0x10, "result": 0x42}


class TestTrapFrames:
    def test_handler_scratch_does_not_leak(self):
        """Handler CSR ops clobber scratch registers; the frame restores them."""
        machine = Machine(VISIONFIVE2)
        seen = {}

        class Program(HaltingProgram):
            def handle_trap(self, ctx):
                # Uses x29-31 internally:
                ctx.csrr(c.CSR_MCAUSE)
                ctx.csrw(c.CSR_MEPC, ctx.csrr(c.CSR_MEPC) + 4)
                ctx.mret()

        def body(ctx):
            ctx.csrw(c.CSR_MTVEC, program.trap_vector)
            ctx.hart.state.set_xreg(31, 0x1234)
            ctx.hart.state.set_xreg(29, 0x5678)
            mstatus = ctx.csrr(c.CSR_MSTATUS)
            # csrr used x29 as result scratch: reload values.
            ctx.hart.state.set_xreg(31, 0x1234)
            ctx.hart.state.set_xreg(29, 0x5678)
            ctx.csrw(
                c.CSR_MSTATUS,
                (mstatus & ~c.MSTATUS_MPP) | (int(c.S_MODE) << 11),
            )
            # careful: csrw consumed x31; set again afterwards via state
            ctx.hart.state.set_xreg(31, 0x1234)
            ctx.csrw(c.CSR_MEPC, ctx.hart.state.pc + 4)
            ctx.hart.state.set_xreg(31, 0x1234)
            ctx.mret()
            ctx.exec_result = ctx.ecall()
            seen["x31"] = ctx.hart.state.get_xreg(31)
            seen["x29"] = ctx.hart.state.get_xreg(29)
            machine.halt("done")

        program = Program(machine, body)
        machine.register(program)
        machine.boot(entry=program.entry_point)
        # a0/a1 are legitimately clobbered (SBI results); x29/x31 must not
        # leak handler scratch values.
        assert seen["x29"] == 0x5678

    def test_set_trap_reg_ignores_x0(self):
        machine = Machine(VISIONFIVE2)
        program = HaltingProgram(machine)
        machine.register(program)
        ctx = GuestContext(machine, machine.harts[0], program)
        ctx.enter_trap_frame()
        ctx.set_trap_reg(0, 99)
        assert ctx.trap_reg(0) == 0


class TestHalt:
    def test_halt_unwinds_program(self):
        machine = Machine(VISIONFIVE2)

        def body(ctx):
            machine.halt("early")
            ctx.csrw(c.CSR_MSCRATCH, 1)  # must raise
            raise AssertionError("should not get here")

        program = HaltingProgram(machine, body)
        machine.register(program)
        assert machine.boot(entry=program.entry_point) == "early"

    def test_wfi_without_wakeup_halts(self):
        def body(ctx):
            ctx.wfi()

        machine, _, reason = run_body(body)
        assert "no wakeup" in reason


class TestWfiAndTimer:
    def test_wfi_wakes_on_timer(self):
        seen = {}

        def body(ctx):
            machine = ctx.machine
            now = ctx.load(machine.clint.mtime_address, size=8)
            ctx.store(machine.clint.mtimecmp_address(0), now + 100, size=8)
            ctx.csrw(c.CSR_MIE, c.MIP_MTIP)
            ctx.csrw(c.CSR_MTVEC, ctx.program.trap_vector)
            ctx.csrs(c.CSR_MSTATUS, c.MSTATUS_MIE)
            ctx.wfi()
            # Executing the next op delivers the interrupt to handle_trap.
            ctx.csrr(c.CSR_MSCRATCH)
            seen["time"] = ctx.load(machine.clint.mtime_address, size=8)
            seen["then"] = now

        machine, program, _ = run_body(body)
        assert seen["time"] >= seen["then"] + 100
        assert program.trap_log  # timer interrupt was handled


class TestStats:
    def test_trap_events_recorded(self):
        def body(ctx):
            ctx.csrw(c.CSR_MTVEC, ctx.program.trap_vector)
            ctx.exec(__import__("repro.isa.instructions", fromlist=["Instruction"]).Instruction("ecall"))

        machine, _, _ = run_body(body)
        assert machine.stats.total_traps == 1
        assert "ECALL_FROM_M" in machine.stats.trap_counts
