"""Real machine-code images executed from simulated RAM."""

import pytest

from repro.hart.binary import BinaryProgram
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa import constants as c
from repro.isa.asm import Assembler
from repro.spec.platform import VISIONFIVE2

REGION = Region("firmware", 0x8000_0000, 0x10_0000)


def run_native_image(asm: Assembler) -> tuple[Machine, BinaryProgram]:
    machine = Machine(VISIONFIVE2)
    program = BinaryProgram("image", REGION, machine, asm.binary())
    machine.register(program)
    machine.boot(entry=REGION.base)
    return machine, program


class TestNativeExecution:
    def test_arithmetic_program(self):
        asm = Assembler(base=REGION.base)
        asm.li("a0", 6)
        asm.li("a1", 7)
        asm.mul("a2", "a0", "a1")
        asm.ebreak()
        machine, program = run_native_image(asm)
        assert program.ebreak_hit
        assert machine.harts[0].state.get_xreg(12) == 42

    def test_loop_with_branches(self):
        asm = Assembler(base=REGION.base)
        asm.li("a0", 10)
        asm.li("a1", 0)
        asm.label("loop")
        asm.add("a1", "a1", "a0")
        asm.addi("a0", "a0", -1)
        asm.bne("a0", "zero", "loop")
        asm.ebreak()
        machine, _ = run_native_image(asm)
        assert machine.harts[0].state.get_xreg(11) == 55

    def test_memory_access(self):
        scratch = REGION.base + 0x8000
        asm = Assembler(base=REGION.base)
        asm.li("t0", scratch)
        asm.li("t1", 0xDEAD)
        asm.sd("t1", "t0", 0)
        asm.ld("a0", "t0", 0)
        asm.ebreak()
        machine, _ = run_native_image(asm)
        assert machine.harts[0].state.get_xreg(10) == 0xDEAD

    def test_csr_access_in_m_mode(self):
        asm = Assembler(base=REGION.base)
        asm.li("t0", 0x1234)
        asm.csrw(c.CSR_MSCRATCH, "t0")
        asm.csrr("a0", c.CSR_MSCRATCH)
        asm.ebreak()
        machine, _ = run_native_image(asm)
        assert machine.harts[0].state.get_xreg(10) == 0x1234

    def test_trap_roundtrip_within_image(self):
        """The image installs its own trap vector and handles an ecall."""
        asm = Assembler(base=REGION.base)
        # entry: mtvec = handler; ecall; a1 = a0; ebreak
        asm.auipc("t0", 0)
        asm.addi("t0", "t0", 0x100 - 0)  # handler at region base + 0x100
        asm.csrw(c.CSR_MTVEC, "t0")
        asm.ecall()
        asm.mv("a1", "a0")
        asm.ebreak()
        while asm.current_address < REGION.base + 0x100:
            asm.nop()
        # handler: a0 = 99; mepc += 4; mret
        asm.li("a0", 99)
        asm.csrr("t1", c.CSR_MEPC)
        asm.addi("t1", "t1", 4)
        asm.csrw(c.CSR_MEPC, "t1")
        asm.mret()
        machine, _ = run_native_image(asm)
        assert machine.harts[0].state.get_xreg(11) == 99

    def test_illegal_word_vectors_to_handler(self):
        asm = Assembler(base=REGION.base)
        asm.auipc("t0", 0)
        asm.addi("t0", "t0", 0x100)
        asm.csrw(c.CSR_MTVEC, "t0")
        asm.nop()
        index_of_illegal = len(asm.instructions())
        asm.nop()  # placeholder, patched to an illegal word below
        asm.ebreak()
        while asm.current_address < REGION.base + 0x100:
            asm.nop()
        asm.csrr("a0", c.CSR_MCAUSE)
        asm.csrr("t1", c.CSR_MEPC)
        asm.addi("t1", "t1", 4)
        asm.csrw(c.CSR_MEPC, "t1")
        asm.mret()
        image = bytearray(asm.binary())
        image[4 * index_of_illegal:4 * index_of_illegal + 4] = b"\x00" * 4
        machine = Machine(VISIONFIVE2)
        program = BinaryProgram("image", REGION, machine, bytes(image))
        machine.register(program)
        machine.boot(entry=REGION.base)
        assert machine.harts[0].state.get_xreg(10) == \
            c.TrapCause.ILLEGAL_INSTRUCTION

    def test_runaway_guard(self):
        asm = Assembler(base=REGION.base)
        asm.label("spin")
        asm.j("spin")
        machine = Machine(VISIONFIVE2)
        program = BinaryProgram("image", REGION, machine, asm.binary())
        program.MAX_STEPS = 500
        machine.register(program)
        with pytest.raises(RuntimeError):
            machine.boot(entry=REGION.base)


def closed_firmware_image(kernel_entry: int) -> bytes:
    """A minimal "closed vendor binary" SBI firmware.

    Boot: install the trap vector, drop to S-mode at ``kernel_entry``.
    Trap handler: answer every SBI call with NOT_SUPPORTED (-2).
    """
    asm = Assembler(base=REGION.base)
    asm.auipc("t0", 0)
    asm.addi("t0", "t0", 0x100)
    asm.csrw(c.CSR_MTVEC, "t0")
    # mstatus.MPP = S
    asm.li("t1", 3 << 11)
    asm.csrc(c.CSR_MSTATUS, "t1")
    asm.li("t1", 1 << 11)
    asm.csrs(c.CSR_MSTATUS, "t1")
    asm.li("t2", kernel_entry)
    asm.csrw(c.CSR_MEPC, "t2")
    asm.li("a0", 0)  # boot hart
    asm.mret()
    while asm.current_address < REGION.base + 0x100:
        asm.nop()
    # trap handler: mepc += 4; a0 = -2 (ERR_NOT_SUPPORTED); mret
    asm.csrr("t0", c.CSR_MEPC)
    asm.addi("t0", "t0", 4)
    asm.csrw(c.CSR_MEPC, "t0")
    asm.li("a0", -2)
    asm.mret()
    return asm.binary()


class TestClosedBinaryUnderMiralis:
    """§8.2's Star64 experiment: a closed firmware blob, virtualized."""

    def _build(self):
        from repro.core.config import MiralisConfig
        from repro.core.miralis import Miralis
        from repro.os_model.kernel import KernelProgram
        from repro.policy.default import DefaultPolicy
        from repro.system import memory_regions

        machine = Machine(VISIONFIVE2)
        regions = memory_regions(VISIONFIVE2)
        seen = {}

        def workload(kernel, ctx):
            seen["time"] = kernel.read_time(ctx)
            error, _ = kernel.sbi_call(ctx, 0x999, 0)
            seen["unknown_sbi"] = error
            seen["mode"] = ctx.mode
            machine.halt("demo complete")

        kernel = KernelProgram("kernel", regions["kernel"], machine,
                               workload=workload)
        blob = BinaryProgram(
            "closed-blob", regions["firmware"], machine,
            closed_firmware_image(kernel.entry_point),
        )
        miralis = Miralis(machine, regions["miralis"], blob,
                          MiralisConfig(), DefaultPolicy())
        machine.register(blob)
        machine.register(kernel)
        machine.register(miralis)
        return machine, miralis, blob, seen

    def test_blob_boots_the_os_deprivileged(self):
        machine, miralis, blob, seen = self._build()
        reason = machine.boot(entry=miralis.region.base)
        assert "demo complete" in reason
        assert seen["mode"] == c.S_MODE
        assert seen["time"] >= 0
        # The blob answered the unknown SBI call itself (world switch).
        assert seen["unknown_sbi"] == (-2) & ((1 << 64) - 1)
        # Every privileged instruction of the blob really was emulated.
        assert miralis.emulation_count >= 10
        assert machine.stats.world_switches >= 2
        # And the blob only ever ran in U-mode: it never hit its native
        # M-mode ebreak path.
        assert not blob.ebreak_hit
