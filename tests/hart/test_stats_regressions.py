"""Regression tests for TrapStats accounting (Figure 3 data quality)."""

from repro.hart.stats import TrapStats
from repro.policy import FirmwareSandboxPolicy
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def _record(stats, mtime):
    return stats.record_trap(
        hart=0, cause=5, is_interrupt=True, from_mode=None, mtime=mtime
    )


class TestEventsByWindow:
    def test_sparse_for_large_mtime(self):
        """A single late event with window=1 must not allocate one bucket
        per elapsed tick (the seeded dense-allocation bug)."""
        stats = TrapStats()
        _record(stats, 1_000_000)
        windows = stats.events_by_window(1)
        assert len(windows) == 1
        assert sum(windows[1_000_000].values()) == 1

    def test_window_indices_are_sparse_keys(self):
        stats = TrapStats()
        _record(stats, 3)
        _record(stats, 7)
        _record(stats, 95)
        windows = stats.events_by_window(10)
        assert sorted(windows) == [0, 9]
        assert sum(windows[0].values()) == 2
        assert sum(windows[9].values()) == 1

    def test_empty(self):
        assert TrapStats().events_by_window(10) == {}


class TestAnnotateLast:
    def test_annotate_without_trap_is_a_noop(self):
        stats = TrapStats()
        stats.annotate_last("firmware")
        assert sum(stats.handler_counts.values()) == 0
        assert stats.total_traps == 0

    def test_reannotation_counts_each_trap_once(self):
        """A trap reclassified by a later handler (interrupt forwarded into
        a world switch) must count once, under its final handler."""
        stats = TrapStats()
        _record(stats, 10)
        stats.annotate_last("miralis")
        stats.annotate_last("miralis-worldswitch")
        assert sum(stats.handler_counts.values()) == 1
        assert stats.handler_counts["miralis-worldswitch"] == 1

    def test_invariant_through_sandbox_boot(self):
        def workload(kernel, ctx):
            kernel.read_time(ctx)
            ctx.compute(5_000)
            kernel.sbi_send_ipi(ctx, 0b1, 0)
            kernel.print(ctx, "done\n")

        system = build_virtualized(
            VISIONFIVE2,
            workload=workload,
            policy=FirmwareSandboxPolicy(
                extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
            ),
        )
        system.run()
        stats = system.machine.stats
        assert stats.total_traps > 0
        assert sum(stats.handler_counts.values()) <= stats.total_traps
