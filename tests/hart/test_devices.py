"""RAM, bus routing, CLINT, PLIC, and UART device tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hart.clint import Clint, MTIME_OFFSET
from repro.hart.memory import Ram, SystemBus
from repro.hart.plic import Plic
from repro.hart.uart import Uart
from repro.spec.step import BusError


class TestRam:
    def test_read_write_roundtrip(self):
        ram = Ram(0x8000_0000, 1 << 20)
        ram.write(0x8000_0100, 8, 0xDEAD_BEEF_CAFE_F00D)
        assert ram.read(0x8000_0100, 8) == 0xDEAD_BEEF_CAFE_F00D

    def test_unwritten_reads_zero(self):
        ram = Ram(0x8000_0000, 1 << 20)
        assert ram.read(0x8008_0000, 8) == 0

    def test_little_endian(self):
        ram = Ram(0, 1 << 16)
        ram.write(0, 4, 0x0403_0201)
        assert ram.read(0, 1) == 0x01
        assert ram.read(3, 1) == 0x04

    def test_cross_page_access(self):
        ram = Ram(0, 1 << 16)
        ram.write(0x0FFC, 8, 0x1122_3344_5566_7788)
        assert ram.read(0x0FFC, 8) == 0x1122_3344_5566_7788
        assert ram.read(0x1000, 4) == 0x1122_3344

    def test_load_image(self):
        ram = Ram(0, 1 << 16)
        ram.load_image(0x100, b"\x13\x00\x00\x00")
        assert ram.read(0x100, 4) == 0x13

    @given(st.integers(min_value=0, max_value=(1 << 16) - 8),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, offset, value):
        ram = Ram(0, 1 << 16)
        ram.write(offset, 8, value)
        assert ram.read(offset, 8) == value


class TestSystemBus:
    def _bus(self):
        bus = SystemBus(Ram(0x8000_0000, 1 << 20))
        bus.attach(Uart(0x1000_0000))
        return bus

    def test_routes_to_ram(self):
        bus = self._bus()
        bus.write(0x8000_0000, 8, 42)
        assert bus.read(0x8000_0000, 8) == 42

    def test_routes_to_device(self):
        bus = self._bus()
        bus.write(0x1000_0000, 1, ord("A"))
        assert bus.device_at(0x1000_0000).text() == "A"

    def test_unmapped_raises(self):
        bus = self._bus()
        with pytest.raises(BusError):
            bus.read(0x4000_0000, 8)
        with pytest.raises(BusError):
            bus.write(0x4000_0000, 8, 0)

    def test_overlapping_devices_rejected(self):
        bus = self._bus()
        with pytest.raises(ValueError):
            bus.attach(Uart(0x1000_0010))

    def test_device_at_boundaries(self):
        bus = self._bus()
        assert bus.device_at(0x1000_0000) is not None
        assert bus.device_at(0x1000_00FF) is not None
        assert bus.device_at(0x1000_0100) is None


class FakeLines:
    def __init__(self):
        self.msip = {}
        self.mtip = {}
        self.eip = {}

    def set_msip(self, hart, level):
        self.msip[hart] = level

    def set_mtip(self, hart, level):
        self.mtip[hart] = level

    def set_eip(self, hart, level):
        self.eip[hart] = level


class TestClint:
    def _clint(self, now=(lambda: 1000)):
        lines = FakeLines()
        clint = Clint(0x200_0000, 2, now, lines.set_msip, lines.set_mtip)
        return clint, lines

    def test_mtime_read(self):
        clint, _ = self._clint()
        assert clint.read(MTIME_OFFSET, 8) == 1000

    def test_mtime_write_ignored(self):
        clint, _ = self._clint()
        clint.write(MTIME_OFFSET, 8, 5)
        assert clint.read(MTIME_OFFSET, 8) == 1000

    def test_msip_sets_line(self):
        clint, lines = self._clint()
        clint.write(4, 4, 1)  # msip[1]
        assert lines.msip == {1: True}
        clint.write(4, 4, 0)
        assert lines.msip == {1: False}

    def test_mtimecmp_drives_mtip(self):
        clint, lines = self._clint()
        clint.write(0x4000, 8, 500)  # deadline in the past
        assert lines.mtip == {0: True}
        clint.write(0x4000, 8, 2000)
        assert lines.mtip == {0: False}

    def test_mtimecmp_word_writes(self):
        clint, _ = self._clint()
        clint.write(0x4000, 4, 0xAAAA_BBBB)
        clint.write(0x4004, 4, 0x1111_2222)
        assert clint.mtimecmp[0] == 0x1111_2222_AAAA_BBBB

    def test_tick_reevaluates(self):
        now = [100]
        clint, lines = self._clint(now=lambda: now[0])
        clint.write(0x4000, 8, 200)
        assert lines.mtip == {0: False}
        now[0] = 250
        clint.tick()
        assert lines.mtip[0] is True

    def test_bad_offset(self):
        clint, _ = self._clint()
        with pytest.raises(BusError):
            clint.read(0x9999, 4)

    def test_addresses(self):
        clint, _ = self._clint()
        assert clint.mtime_address == 0x200_0000 + MTIME_OFFSET
        assert clint.msip_address(1) == 0x200_0004
        assert clint.mtimecmp_address(1) == 0x200_4008


class TestPlic:
    def _plic(self):
        lines = FakeLines()
        return Plic(0xC00_0000, 2, lines.set_eip), lines

    def test_claim_complete_cycle(self):
        plic, lines = self._plic()
        plic.write(4 * 5, 4, 3)  # priority[5] = 3
        plic.write(0x2000, 4, 1 << 5)  # enable source 5 for context 0
        plic.raise_interrupt(5)
        assert lines.eip[0] is True
        claimed = plic.read(0x200004, 4)
        assert claimed == 5
        assert lines.eip[0] is False
        plic.write(0x200004, 4, 5)  # complete

    def test_threshold_masks(self):
        plic, lines = self._plic()
        plic.write(4 * 3, 4, 1)  # priority 1
        plic.write(0x2000, 4, 1 << 3)
        plic.write(0x200000, 4, 2)  # threshold above priority
        plic.raise_interrupt(3)
        assert lines.eip.get(0, False) is False

    def test_disabled_source_not_delivered(self):
        plic, lines = self._plic()
        plic.write(4 * 3, 4, 7)
        plic.raise_interrupt(3)
        assert lines.eip.get(0, False) is False

    def test_highest_priority_claimed_first(self):
        plic, _ = self._plic()
        plic.write(4 * 1, 4, 1)
        plic.write(4 * 2, 4, 7)
        plic.write(0x2000, 4, 0b110)
        plic.raise_interrupt(1)
        plic.raise_interrupt(2)
        assert plic.read(0x200004, 4) == 2

    def test_bad_source(self):
        plic, _ = self._plic()
        with pytest.raises(ValueError):
            plic.raise_interrupt(0)

    def test_requires_word_access(self):
        plic, _ = self._plic()
        with pytest.raises(BusError):
            plic.read(0, 8)


class TestUart:
    def test_output_accumulates(self):
        uart = Uart(0x1000_0000)
        for byte in b"hi":
            uart.write(0, 1, byte)
        assert uart.text() == "hi"

    def test_lsr_always_ready(self):
        uart = Uart(0x1000_0000)
        assert uart.read(5, 1) & 0x20

    def test_requires_byte_access(self):
        uart = Uart(0x1000_0000)
        with pytest.raises(BusError):
            uart.write(0, 4, 0x41414141)
