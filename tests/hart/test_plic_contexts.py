"""Regression tests for per-context PLIC claim/complete state.

Red-first for the bug where ``Plic.claimed`` was a single global mask:
with two contexts in play, a completion written by one context released
a source still being serviced by the other, so the re-raised source was
offered again mid-service — double delivery on 2-hart runs.
"""

from repro.hart.plic import Plic

CLAIM0 = 0x200004
CLAIM1 = 0x201004


class FakeLines:
    def __init__(self):
        self.eip = {}

    def set_eip(self, context, level):
        self.eip[context] = level


def _plic():
    lines = FakeLines()
    plic = Plic(0xC00_0000, 2, lines.set_eip)
    # Source 5 routes to context 0, source 7 to context 1.
    plic.write(4 * 5, 4, 3)
    plic.write(4 * 7, 4, 3)
    plic.write(0x2000, 4, 1 << 5)
    plic.write(0x2000 + 0x80, 4, 1 << 7)
    return plic, lines


class TestPerContextClaims:
    def test_cross_context_complete_is_ignored(self):
        plic, lines = _plic()
        plic.raise_interrupt(5)
        plic.raise_interrupt(7)
        assert plic.read(CLAIM0, 4) == 5
        assert plic.read(CLAIM1, 4) == 7
        # Context 1 "completes" source 5 — a source it never claimed.
        plic.write(CLAIM1, 4, 5)
        # Source 5 is still in service by context 0: a re-raise must not
        # be offered to anyone until context 0 itself completes it.
        plic.raise_interrupt(5)
        assert lines.eip[0] is False
        assert plic.read(CLAIM0, 4) == 0
        # Context 0's own completion releases it and the pending re-raise
        # is offered again.
        plic.write(CLAIM0, 4, 5)
        assert lines.eip[0] is True
        assert plic.read(CLAIM0, 4) == 5

    def test_two_contexts_service_independently(self):
        plic, lines = _plic()
        plic.raise_interrupt(5)
        plic.raise_interrupt(7)
        assert plic.read(CLAIM0, 4) == 5
        assert plic.read(CLAIM1, 4) == 7
        plic.write(CLAIM0, 4, 5)
        assert lines.eip[0] is False
        # Context 1's in-service claim survives context 0's completion.
        plic.raise_interrupt(7)
        assert plic.read(CLAIM1, 4) == 0
        plic.write(CLAIM1, 4, 7)
        assert lines.eip[1] is True
        assert plic.read(CLAIM1, 4) == 7

    def test_reraise_while_claimed_waits_for_completion(self):
        plic, lines = _plic()
        plic.raise_interrupt(5)
        assert plic.read(CLAIM0, 4) == 5
        plic.raise_interrupt(5)
        assert lines.eip[0] is False
        assert plic.read(CLAIM0, 4) == 0
        plic.write(CLAIM0, 4, 5)
        assert lines.eip[0] is True
        assert plic.read(CLAIM0, 4) == 5

    def test_complete_of_unclaimed_source_is_a_no_op(self):
        plic, lines = _plic()
        plic.raise_interrupt(5)
        assert plic.read(CLAIM0, 4) == 5
        plic.write(CLAIM0, 4, 7)  # never claimed by context 0
        plic.raise_interrupt(5)
        assert lines.eip[0] is False
        assert plic.read(CLAIM0, 4) == 0
