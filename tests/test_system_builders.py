"""System assembly: memory layout, builders, and the System facade."""

import pytest

from repro.firmware.opensbi import (
    OpenSbiFirmware,
    PremierP550Firmware,
    VisionFive2Firmware,
)
from repro.spec.platform import PREMIER_P550, QEMU_VIRT, VISIONFIVE2
from repro.system import (
    System,
    build_native,
    build_virtualized,
    memory_regions,
)


class TestMemoryLayout:
    def test_regions_disjoint(self):
        regions = list(memory_regions(VISIONFIVE2).values())
        for i, first in enumerate(regions):
            for second in regions[i + 1:]:
                assert first.end <= second.base or second.end <= first.base, \
                    (first, second)

    def test_regions_in_ram(self):
        for region in memory_regions(VISIONFIVE2).values():
            assert region.base >= VISIONFIVE2.ram_base
            assert region.end <= VISIONFIVE2.ram_base + min(
                VISIONFIVE2.ram_bytes, 1 << 32
            )

    def test_expected_names(self):
        assert set(memory_regions(VISIONFIVE2)) == {
            "firmware", "miralis", "kernel", "enclave"
        }

    def test_napot_compatible_alignment(self):
        """Guard regions must be NAPOT-encodable (Figure 5's entries)."""
        from repro.isa.bits import napot_encode

        for name in ("firmware", "miralis"):
            region = memory_regions(VISIONFIVE2)[name]
            napot_encode(region.base, region.size)  # must not raise


class TestBuilders:
    def test_default_vendor_firmware_per_platform(self):
        assert isinstance(build_native(VISIONFIVE2).firmware,
                          VisionFive2Firmware)
        assert isinstance(build_native(PREMIER_P550).firmware,
                          PremierP550Firmware)
        assert type(build_native(QEMU_VIRT).firmware) is OpenSbiFirmware

    def test_firmware_class_override(self):
        from repro.firmware.rustsbi import RustSbiFirmware

        system = build_native(VISIONFIVE2, firmware_class=RustSbiFirmware)
        assert isinstance(system.firmware, RustSbiFirmware)

    def test_native_has_no_monitor(self):
        system = build_native(VISIONFIVE2)
        assert not system.virtualized
        assert system.miralis is None

    def test_virtualized_registers_three_regions(self):
        system = build_virtualized(VISIONFIVE2)
        machine = system.machine
        assert machine.owner_of(system.firmware.region.base) is system.firmware
        assert machine.owner_of(system.miralis.region.base) is system.miralis
        assert machine.owner_of(system.kernel.region.base) is system.kernel

    def test_default_policy(self):
        from repro.policy.default import DefaultPolicy

        system = build_virtualized(VISIONFIVE2)
        assert isinstance(system.policy, DefaultPolicy)

    def test_offload_flag_propagates(self):
        assert build_virtualized(VISIONFIVE2).miralis.config.offload_enabled
        assert not build_virtualized(
            VISIONFIVE2, offload=False
        ).miralis.config.offload_enabled

    def test_vendor_csr_allowlist_from_platform(self):
        system = build_virtualized(PREMIER_P550)
        assert system.miralis.config.allowed_vendor_csrs == \
            PREMIER_P550.vendor_csrs

    def test_run_boots_from_the_right_entry(self):
        native = build_native(VISIONFIVE2)
        native.run()
        assert native.machine.halted
        virtualized = build_virtualized(VISIONFIVE2)
        virtualized.run()
        assert virtualized.machine.halted
        # The virtualized boot entered through the monitor.
        assert virtualized.miralis._booted[0]

    def test_firmware_kwargs_forwarded(self):
        from repro.firmware.malicious import MaliciousFirmware

        system = build_native(
            VISIONFIVE2,
            firmware_class=MaliciousFirmware,
            firmware_kwargs={"attack": "write_os_memory"},
        )
        assert system.firmware.attack == "write_os_memory"


class TestSystemFacade:
    def test_console_property(self):
        system = build_native(VISIONFIVE2)
        system.run()
        assert "OpenSBI" in system.console_output

    def test_is_dataclass_like(self):
        system = build_native(VISIONFIVE2)
        assert isinstance(system, System)
        assert system.kernel is not None


class TestPolicyInterfaceDefaults:
    def test_all_hooks_continue(self):
        from repro.policy.interface import PolicyAction, PolicyModule

        policy = PolicyModule()
        assert policy.on_firmware_ecall(None, None) == PolicyAction.CONTINUE
        assert policy.on_firmware_trap(None, None, None) == PolicyAction.CONTINUE
        assert policy.on_switch_from_firmware(None, None) == PolicyAction.CONTINUE
        assert policy.on_os_ecall(None, None, None) == PolicyAction.CONTINUE
        assert policy.on_os_trap(None, None, None) == PolicyAction.CONTINUE
        assert policy.on_switch_from_os(None, None) == PolicyAction.CONTINUE
        assert policy.on_interrupt(None, None, 0) == PolicyAction.CONTINUE

    def test_no_pmp_claim_by_default(self):
        from repro.core.vcpu import World
        from repro.policy.interface import PolicyModule

        policy = PolicyModule()
        assert policy.num_pmp_entries() == 0
        assert policy.pmp_entries(World.FIRMWARE, 0) == []
        assert policy.allow_firmware_default_access()

    def test_exactly_seven_hooks(self):
        """§5.1: 'The interface consists in seven optional methods.'"""
        from repro.policy.interface import PolicyModule

        hooks = [name for name in vars(PolicyModule)
                 if name.startswith("on_")]
        assert len(hooks) == 7
