"""Activation snapshots roll back *everything* an activation mutated.

S1 of the snapshot PR: the watchdog's activation snapshot used to hold
only the virtual context and vCLINT shadows — firmware writes to its own
RAM region leaked straight through a restore, so a retried activation
started from memory the abandoned attempt had already scribbled on.

S2: trap statistics and tracer metrics recorded during the abandoned
activation used to survive the restore, so every retry double-counted
its traps.  Epoch marking rewinds them; recovery decisions and committed
fault injections are facts and survive.
"""

from repro.core.config import MiralisConfig
from repro.hart.stats import cause_name
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized
from repro.trace import Tracer

CAUSE = 8
CAUSE_NAME = cause_name(CAUSE, False)


def _system(tracer=None):
    system = build_virtualized(
        VISIONFIVE2,
        miralis_config=MiralisConfig(watchdog_enabled=True,
                                     offload_enabled=False),
    )
    if tracer is not None:
        system.machine.tracer = tracer
    return system


class TestRamRollback:
    def test_firmware_ram_writes_roll_back_on_restore(self):
        system = _system()
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]
        scratch = system.firmware.region.base + 0x8000

        machine.ram.write(scratch, 8, 0x1111_2222_3333_4444)
        snap = watchdog._activation_snapshot(hart, vctx)
        # The activation scribbles on firmware scratch memory, then fails.
        machine.ram.write(scratch, 8, 0xDEAD_BEEF_DEAD_BEEF)
        machine.ram.write(scratch + 0x1000, 8, 0x5555)  # a fresh page too
        watchdog._activation_restore(hart, vctx, snap)
        assert machine.ram.read(scratch, 8) == 0x1111_2222_3333_4444
        assert machine.ram.read(scratch + 0x1000, 8) == 0

    def test_non_firmware_ram_is_left_alone(self):
        system = _system()
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]
        kernel_addr = system.kernel.region.base + 0x8000

        snap = watchdog._activation_snapshot(hart, vctx)
        machine.ram.write(kernel_addr, 8, 0xABCD)
        watchdog._activation_restore(hart, vctx, snap)
        assert machine.ram.read(kernel_addr, 8) == 0xABCD

    def test_snapshot_pages_are_immune_to_later_writes(self):
        system = _system()
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]
        scratch = system.firmware.region.base + 0x8000

        machine.ram.write(scratch, 8, 0xAAAA)
        snap = watchdog._activation_snapshot(hart, vctx)
        # Two rounds of mutate+restore: the same snapshot must restore
        # the same bytes both times (copy-on-write, not aliasing).
        for garbage in (0xBBBB, 0xCCCC):
            machine.ram.write(scratch, 8, garbage)
            watchdog._activation_restore(hart, vctx, snap)
            assert machine.ram.read(scratch, 8) == 0xAAAA


class TestMetricsRewind:
    def _record_some_traps(self, machine, tracer, count=3):
        for _ in range(count):
            machine.stats.record_trap(hart=0, cause=CAUSE, is_interrupt=False,
                                      from_mode=None, mtime=0)
            if tracer is not None:
                tracer.trap_entry(machine, 0, CAUSE, False)
                tracer.trap_exit(machine, 0, "miralis-emulate")

    def test_abandoned_activation_traps_are_not_double_counted(self):
        tracer = Tracer()
        system = _system(tracer)
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]

        self._record_some_traps(machine, tracer, count=2)
        baseline_traps = machine.stats.total_traps
        baseline_events = len(machine.stats.events)

        snap = watchdog._activation_snapshot(hart, vctx)
        self._record_some_traps(machine, tracer, count=5)
        watchdog._activation_restore(hart, vctx, snap)

        stats = machine.stats
        assert stats.total_traps == baseline_traps
        assert len(stats.events) == baseline_events
        assert stats.trap_counts[CAUSE_NAME] == baseline_traps
        assert tracer.trap_causes[CAUSE_NAME] == baseline_traps
        assert tracer.counts.get("trap-exit", 0) == baseline_traps
        histogram = tracer.metrics.trap_latency.get(CAUSE_NAME)
        assert histogram is not None and histogram.count == baseline_traps

    def test_fault_injections_and_watchdog_events_survive_rewind(self):
        tracer = Tracer()
        system = _system(tracer)
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]

        snap = watchdog._activation_snapshot(hart, vctx)
        self._record_some_traps(machine, tracer, count=3)
        # A committed injection and a watchdog transition during the
        # activation are decisions, not activation state.
        tracer.emit(machine, "fault-inject", 0, site="mmio", index=1, seed=9)
        tracer.emit(machine, "watchdog", 0, state="recover", reason="test")
        watchdog._activation_restore(hart, vctx, snap)

        kinds = [event.kind for event in tracer.events()]
        assert kinds.count("fault-inject") == 1
        assert kinds.count("watchdog") == 1
        assert "trap-entry" not in kinds[-2:]
        assert tracer.counts["fault-inject"] == 1
        assert tracer.counts["watchdog"] == 1
        # The sequence clock stays monotonic past the survivors.
        seqs = [event.seq for event in tracer.events()]
        assert seqs == sorted(seqs)
        assert tracer.total_events > (seqs[-1] if seqs else 0)

    def test_recovery_counts_are_never_rewound(self):
        system = _system()
        machine = system.machine
        watchdog = system.miralis.watchdog
        hart = machine.harts[0]
        vctx = system.miralis.vctx[0]

        snap = watchdog._activation_snapshot(hart, vctx)
        machine.stats.note_recovery("recoveries", hart=0)
        machine.stats.note_recovery("retries", hart=0)
        watchdog._activation_restore(hart, vctx, snap)
        assert machine.stats.recovery_counts["recoveries"] == 1
        assert machine.stats.recovery_counts["retries"] == 1
