"""Checkpoint digest determinism (S4), alias safety, the on-disk store,
and warm-start equivalence.

The determinism pins: ``Checkpoint.digest()`` is a pure function of the
architectural state.  Two independent boots of the same configuration
hash byte-identically — at 1, 2, and 4 harts — and a
capture→restore→capture round-trip through a *fresh* machine reproduces
the digest exactly.  Warm-started chaos runs (restored from a cached
kernel-entry checkpoint) produce results byte-identical to cold runs of
the same cell, which is what lets ``--warm-start`` stay out of campaign
cell keys.
"""

import dataclasses
import json

import pytest

from repro.faults.chaos import MAX_DISPATCHES, _build_sbi_system, run_chaos
from repro.snapshot import (
    Checkpoint,
    SnapshotError,
    capture,
    diff_checkpoints,
    load_checkpoint,
    restore,
    save_checkpoint,
)
from repro.spec.platform import VISIONFIVE2


def _boot_system(platform=VISIONFIVE2, firmware="opensbi"):
    system, _ = _build_sbi_system(platform, firmware)
    machine = system.machine
    machine.max_dispatches = MAX_DISPATCHES
    reached = machine.boot_to(system.kernel.entry_point,
                              entry=system.miralis.region.base)
    assert reached, f"halted before kernel entry: {machine.halt_reason!r}"
    return system


def _boot_checkpoint(platform=VISIONFIVE2, firmware="opensbi"):
    system = _boot_system(platform, firmware)
    return capture(system.machine, phase="kernel-entry")


class TestDigestDeterminism:
    """S4: the digest is timing-free and boot-order-free."""

    def test_independent_boots_hash_identically(self):
        assert _boot_checkpoint().digest() == _boot_checkpoint().digest()

    @pytest.mark.parametrize("harts", [1, 2, 4])
    def test_pinned_across_hart_counts(self, harts):
        platform = dataclasses.replace(VISIONFIVE2, num_harts=harts)
        a = _boot_checkpoint(platform)
        b = _boot_checkpoint(platform)
        assert a.state["num_harts"] == harts
        assert a.digest() == b.digest()

    def test_hart_count_is_part_of_the_digest(self):
        digests = {
            _boot_checkpoint(
                dataclasses.replace(VISIONFIVE2, num_harts=harts)).digest()
            for harts in (1, 2, 4)
        }
        assert len(digests) == 3

    def test_firmwares_hash_differently_but_stably(self):
        a = _boot_checkpoint(firmware="rustsbi")
        b = _boot_checkpoint(firmware="rustsbi")
        assert a.digest() == b.digest()
        assert a.digest() != _boot_checkpoint(firmware="opensbi").digest()

    def test_doc_survives_a_json_round_trip(self):
        checkpoint = _boot_checkpoint()
        doc = json.loads(json.dumps(checkpoint.doc()))
        assert Checkpoint.from_doc(doc).digest() == checkpoint.digest()

    def test_restore_into_fresh_machine_reproduces_digest(self):
        checkpoint = _boot_checkpoint()
        system, _ = _build_sbi_system(VISIONFIVE2, "opensbi")
        restore(system.machine, checkpoint)
        recaptured = capture(system.machine, phase=checkpoint.phase)
        assert recaptured.digest() == checkpoint.digest()


class TestAliasSafety:
    def test_running_on_does_not_mutate_the_checkpoint(self):
        system = _boot_system()
        machine = system.machine
        checkpoint = capture(machine, phase="kernel-entry")
        digest = checkpoint.digest()
        # Scribble on checkpointed RAM and run the machine to completion:
        # the checkpoint's COW pages must not see any of it.
        machine.ram.write(system.firmware.region.base + 0x8000, 8, 0xDEAD)
        machine.boot()
        assert checkpoint.digest() == digest

    def test_one_checkpoint_seeds_many_identical_restores(self):
        checkpoint = _boot_checkpoint()
        digest = checkpoint.digest()
        for _ in range(2):
            system, _ = _build_sbi_system(VISIONFIVE2, "opensbi")
            machine = system.machine
            restore(machine, checkpoint)
            assert capture(machine, phase="kernel-entry").digest() == digest
            # Run this consumer to the end; the next restore must not
            # observe the first consumer's execution through shared pages.
            machine.max_dispatches = MAX_DISPATCHES
            machine.boot()

    def test_restore_rejects_wrong_hart_count(self):
        checkpoint = _boot_checkpoint(
            dataclasses.replace(VISIONFIVE2, num_harts=2))
        system, _ = _build_sbi_system(VISIONFIVE2, "opensbi")
        with pytest.raises(SnapshotError, match="harts"):
            restore(system.machine, checkpoint)


class TestStore:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = _boot_checkpoint()
        path = save_checkpoint(checkpoint, tmp_path)
        assert checkpoint.digest()[:16] in path.name
        loaded = load_checkpoint(path)
        assert loaded.digest() == checkpoint.digest()

    def test_corruption_is_detected_on_load(self, tmp_path):
        checkpoint = _boot_checkpoint()
        path = save_checkpoint(checkpoint, tmp_path)
        doc = json.loads(path.read_text())
        doc["state"]["machine"]["cycles"] += 1
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError):
            load_checkpoint(path)

    def test_diff_labels_the_changed_paths(self):
        a = _boot_checkpoint(firmware="opensbi")
        b = _boot_checkpoint(firmware="opensbi")
        assert diff_checkpoints(a, b) == []
        c = _boot_checkpoint(firmware="rustsbi")
        paths = {entry["path"] for entry in diff_checkpoints(a, c)}
        assert any(path.startswith("ram.pages.") for path in paths)
        assert "state.devices.uart.output" in paths


class TestWarmColdEquivalence:
    """A warm-started run is byte-identical to the cold phased run."""

    COMPARED = ("halt_reason", "checkpoint", "quarantined", "recoveries",
                "hart_recoveries", "stat_recoveries", "stat_hart_recoveries",
                "injections", "injection_log", "quarantine_log", "trap_log",
                "trap_log_total", "console", "error")

    def _compare(self, firmware, plan, seed):
        cold = run_chaos(firmware, plan=plan, seed=seed,
                         phase="kernel-entry", warm_start=False)
        warm = run_chaos(firmware, plan=plan, seed=seed,
                         phase="kernel-entry", warm_start=True)
        for field in self.COMPARED:
            assert getattr(warm, field) == getattr(cold, field), field

    @pytest.mark.parametrize("plan", ["none", "csr-chaos", "transient-mmio"])
    def test_opensbi_plans(self, plan):
        self._compare("opensbi", plan, seed=3)

    def test_rustsbi(self):
        self._compare("rustsbi", "csr-chaos", seed=5)

    def test_phase_validation(self):
        with pytest.raises(ValueError, match="phase"):
            run_chaos("opensbi", plan="none", seed=0, phase="mid-boot")
        with pytest.raises(ValueError):
            run_chaos("opensbi", plan="none", seed=0, warm_start=True)
        with pytest.raises(ValueError):
            run_chaos("zephyr", plan="none", seed=0, phase="kernel-entry")


class TestCampaignWarmStart:
    def test_warm_and_cold_aggregates_are_byte_identical(self):
        from repro.campaign import (
            canonical_json,
            chaos_cells,
            merge_campaign,
            run_campaign,
        )

        kwargs = dict(firmwares=("opensbi",), plans=("none", "csr-chaos"),
                      seeds=(0, 1), phase="kernel-entry")
        cold = chaos_cells(warm_start=False, **kwargs)
        warm = chaos_cells(warm_start=True, **kwargs)
        # warm_start is an execution strategy, not an identity: keys match.
        assert [cell.key for cell in cold] == [cell.key for cell in warm]

        cold_doc = canonical_json(merge_campaign(
            run_campaign(cold, workers=1, timeout=120.0)))
        warm_doc = canonical_json(merge_campaign(
            run_campaign(warm, workers=1, timeout=120.0)))
        assert warm_doc == cold_doc
