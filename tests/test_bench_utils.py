"""Benchmark-harness utilities: statistics, tables, runner plumbing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.stats import (
    geomean,
    latency_distribution,
    mean,
    overhead_percent,
    percentile,
    relative,
)
from repro.bench.tables import format_ns, render_series, render_table


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_extremes(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100

    def test_p99(self):
        values = list(range(1, 101))
        assert percentile(values, 99) == 99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1),
           st.floats(min_value=0, max_value=100))
    def test_within_range(self, values, p):
        result = percentile(values, p)
        assert min(values) <= result <= max(values)

    def test_distribution_points(self):
        dist = latency_distribution(list(range(1000)))
        assert dist[50] <= dist[95] <= dist[99] <= dist[99.9]


class TestAggregates:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1, 0])

    def test_relative(self):
        assert relative(110, 100) == pytest.approx(1.1)

    def test_relative_zero_baseline(self):
        with pytest.raises(ValueError):
            relative(1, 0)

    def test_overhead_percent(self):
        assert overhead_percent(120, 100) == pytest.approx(20.0)
        assert overhead_percent(90, 100) == pytest.approx(-10.0)

    @given(st.floats(min_value=0.1, max_value=1e6),
           st.floats(min_value=0.1, max_value=1e6))
    def test_overhead_relative_consistency(self, value, baseline):
        assert overhead_percent(value, baseline) == pytest.approx(
            (relative(value, baseline) - 1) * 100
        )


class TestTables:
    def test_render_table_aligns(self):
        text = render_table("T", ("a", "bb"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_render_series(self):
        text = render_series("S", {"g1": {"a": 1.0}, "g2": {"a": 2.0, "b": 3.0}})
        assert "g1" in text and "1.000" in text and "-" in text

    @pytest.mark.parametrize("value,expected", [
        (250, "250 ns"),
        (2_500, "2.50 µs"),
        (2_500_000, "2.50 ms"),
    ])
    def test_format_ns(self, value, expected):
        assert format_ns(value) == expected


class TestRunner:
    def test_unknown_configuration_rejected(self):
        from repro.bench.runner import build_system
        from repro.spec.platform import VISIONFIVE2

        with pytest.raises(ValueError):
            build_system("xen", VISIONFIVE2, lambda kernel, ctx: None)

    def test_measurement_properties(self):
        from repro.bench.runner import run_workload
        from repro.os_model.workloads import GCC
        from repro.spec.platform import VISIONFIVE2

        measurement = run_workload("native", VISIONFIVE2, mix=GCC,
                                   operations=30)
        assert measurement.throughput > 0
        assert measurement.trap_rate > 0
        assert measurement.simulated_seconds > 0
        assert measurement.configuration == "native"
        assert "reset" in measurement.halt_reason

    def test_compare_configurations_keys(self):
        from repro.bench.runner import compare_configurations
        from repro.os_model.workloads import GCC
        from repro.spec.platform import VISIONFIVE2

        runs = compare_configurations(VISIONFIVE2, GCC, operations=20)
        assert set(runs) == {"native", "miralis", "miralis-no-offload"}
        # Offload keeps world switches below the no-offload run.
        assert runs["miralis"].world_switches <= \
            runs["miralis-no-offload"].world_switches
