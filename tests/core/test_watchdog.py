"""Watchdog recovery tests: retry, quarantine, and the OS fallback path.

These drive real boots of adversarially-modified firmware through the
full monitor stack, so recovery is tested exactly as chaos runs hit it.
"""

import pytest

from repro.core.config import MiralisConfig
from repro.core.miralis import Miralis
from repro.firmware.opensbi import OpenSbiFirmware
from repro.hart.machine import Machine
from repro.policy.default import DefaultPolicy
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized, memory_regions


def _watchdog_config(**overrides) -> MiralisConfig:
    params = dict(
        offload_enabled=False,
        watchdog_enabled=True,
        halt_on_violation=False,
        vm_trap_budget=200,
        max_firmware_retries=2,
    )
    params.update(overrides)
    return MiralisConfig(**params)


class WedgedBootFirmware(OpenSbiFirmware):
    """Firmware that wedges forever during boot: an infinite CSR loop."""

    def boot(self, ctx):
        while True:
            ctx.csrr(0x305)  # each read traps and burns trap budget


class PanickyFirmware(OpenSbiFirmware):
    """Firmware that panics on the Nth SBI call, then behaves."""

    def __init__(self, *args, panic_after: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.panic_after = panic_after
        self.sbi_calls = 0

    def dispatch_sbi(self, ctx, call):
        self.sbi_calls += 1
        if self.sbi_calls == self.panic_after:
            self.panic(ctx, "synthetic failure")
        return super().dispatch_sbi(ctx, call)


class AlwaysPanicFirmware(OpenSbiFirmware):
    """Firmware that panics on *every* SBI call after boot."""

    def dispatch_sbi(self, ctx, call):
        # When the watchdog recovers, panic() does not return; when it
        # cannot (watchdog off), the machine is halted and the return
        # value is irrelevant — but must still be a valid SbiRet.
        from repro.sbi.constants import SbiError
        from repro.sbi.types import SbiRet

        self.panic(ctx, "hopeless")
        return SbiRet.failure(SbiError.ERR_FAILED)


def _checkpoint_workload(flag):
    def workload(kernel, ctx):
        t = kernel.read_time(ctx)
        ctx.store(kernel.region.base + 0x8000, t, size=8)
        flag.append(True)

    return workload


class TestBootRecovery:
    def test_wedged_boot_quarantines_cleanly(self):
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=WedgedBootFirmware,
            miralis_config=_watchdog_config(),
        )
        reason = system.run()
        watchdog = system.miralis.watchdog
        assert "firmware quarantined" in reason
        assert watchdog.quarantined[0]
        # Budget detection fired once per attempt: initial + retries.
        assert watchdog.counters["detect:trap-budget"] == 3
        assert watchdog.counters["retries"] == 2
        assert watchdog.counters["quarantines"] == 1

    def test_boot_panic_retries_are_bounded(self):
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=WedgedBootFirmware,
            miralis_config=_watchdog_config(max_firmware_retries=0),
        )
        reason = system.run()
        assert "firmware quarantined" in reason
        assert system.miralis.watchdog.counters["retries"] == 0


class TestTrapRecovery:
    def test_transient_panic_recovers_and_os_completes(self):
        flag = []
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=PanickyFirmware,
            workload=_checkpoint_workload(flag),
            miralis_config=_watchdog_config(),
            firmware_kwargs={"panic_after": 3},
        )
        reason = system.run()
        watchdog = system.miralis.watchdog
        assert flag, "OS never reached its checkpoint"
        assert "sbi system reset" in reason
        assert watchdog.counters["detect:panic"] >= 1
        assert watchdog.counters["retries"] >= 1
        assert not watchdog.quarantined[0]

    def test_hopeless_firmware_quarantined_os_keeps_running(self):
        flag = []
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=AlwaysPanicFirmware,
            workload=_checkpoint_workload(flag),
            miralis_config=_watchdog_config(),
        )
        reason = system.run()
        watchdog = system.miralis.watchdog
        assert watchdog.quarantined[0]
        # The OS survived on Miralis-served default SBI responses and shut
        # down through the monitor's SRST fallback.
        assert flag
        assert "sbi system reset" in reason
        assert "[firmware quarantined]" in reason
        assert watchdog.counters["quarantined-served"] >= 1

    def test_recovery_surfaces_in_trap_log_and_counters(self):
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=AlwaysPanicFirmware,
            workload=_checkpoint_workload([]),
            miralis_config=_watchdog_config(),
        )
        system.run()
        stats = system.machine.stats
        # Recovery decisions are first-class facts: activation rollback
        # rewinds handler annotations with the abandoned trap events, so
        # the authoritative per-kind totals live in recovery_counts.
        assert stats.recovery_counts["recoveries"] >= 1
        assert stats.recovery_counts["quarantines"] >= 1
        # The quarantined hart's OS keeps being served by the monitor,
        # which surfaces in the (surviving) trap log.
        assert stats.handler_counts.get("miralis-quarantine", 0) >= 1
        assert system.machine.recovery_stats is system.miralis.watchdog.counters
        events = system.miralis.watchdog.events
        assert any(kind == "quarantine" for _, kind, _ in events)


class TestWatchdogDisabled:
    def test_panic_halts_when_watchdog_off(self):
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=AlwaysPanicFirmware,
            workload=_checkpoint_workload([]),
            miralis_config=_watchdog_config(watchdog_enabled=False),
        )
        reason = system.run()
        assert "firmware panic" in reason
        assert system.miralis.watchdog is None

    def test_default_config_has_no_watchdog(self):
        system = build_virtualized(VISIONFIVE2)
        assert system.miralis.watchdog is None


class TestZephyrRecovery:
    def test_zephyr_panic_routes_through_watchdog(self):
        from repro.firmware.zephyr import ZephyrFirmware

        class BrokenZephyr(ZephyrFirmware):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._failures = [0]

            def handle_trap(self, ctx):
                # Fail the first tick, then behave: exercises one retry.
                if self._failures[0] < 1:
                    self._failures[0] += 1
                    hook = self.machine.firmware_panic_hook
                    if hook is not None:
                        hook(ctx.hart, "synthetic tick failure")
                    self.machine.halt("zephyr: unexpected trap")
                    return
                super().handle_trap(ctx)

        machine = Machine(VISIONFIVE2)
        regions = memory_regions(VISIONFIVE2)
        zephyr = BrokenZephyr("zephyr", regions["firmware"], machine,
                              num_ticks=3)
        miralis = Miralis(
            machine=machine,
            region=regions["miralis"],
            firmware=zephyr,
            config=_watchdog_config(),
            policy=DefaultPolicy(),
        )
        machine.register(zephyr)
        machine.register(miralis)
        reason = machine.boot(entry=miralis.region.base)
        assert "workload complete" in reason
        assert miralis.watchdog.counters["detect:panic"] == 1
        assert miralis.watchdog.counters["retries"] == 1
