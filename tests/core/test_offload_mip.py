"""Fast-path offload must keep the firmware-visible mip view coherent.

The offload handlers update the physical ``mip_sw`` mirror directly
(that is the whole point: no world switch), but the virtualized firmware
still observes interrupt state through the emulated CSR path
(``read_csr(vctx, CSR_MIP)``).  A world-switched emulation of the same
trap would have updated the virtual ``mip`` (the firmware handler does
``csrs``/``csrc`` on the virtual CSR), so any divergence between the two
views means the next world switch resumes the firmware with stale
interrupt state.

The test drives each of the five offloaded causes from the OS workload
and samples both views at every step: they must agree on the S-level
bits at all times.
"""

from __future__ import annotations

import pytest

from repro.core.csr_emul import read_csr
from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def _sample(system, samples, label):
    hart = system.machine.harts[0]
    vctx = system.miralis.vctx[0]
    samples.append((
        label,
        hart.state.csr.mip & c.SIP_MASK,
        read_csr(vctx, c.CSR_MIP) & c.SIP_MASK,
    ))


@pytest.fixture
def offload_run():
    """Boot the virtualized deployment with a workload that exercises all
    five offloaded causes, sampling both mip views after each."""
    holder = {}
    samples = []

    def workload(kernel, ctx):
        system = holder["system"]
        sample = lambda label: _sample(system, samples, label)  # noqa: E731
        t0 = kernel.read_time(ctx)  # time-read
        sample("time-read")
        # Arm an immediate deadline, then wait for the offloaded
        # timer-interrupt path to raise STIP.
        kernel.sbi_set_timer(ctx, t0 + 10)
        ctx.compute(20_000)
        sample("timer-interrupt")
        # Re-arming far in the future clears STIP (offloaded set-timer).
        kernel.sbi_set_timer(ctx, t0 + 50_000_000)
        sample("set-timer")
        kernel.sbi_send_ipi(ctx, 0b1, 0)  # self-IPI raises SSIP
        sample("ipi")
        kernel.sbi_remote_fence_i(ctx, 0b1, 0)  # rfence
        sample("rfence")
        ctx.store(kernel.region.base + 0x9001, 0xBEEF, size=4)  # misaligned
        sample("misaligned")

    system = build_virtualized(VISIONFIVE2, workload=workload)
    holder["system"] = system
    system.run()
    hits = dict(system.miralis.offload.hits)
    return samples, hits


def test_all_five_causes_offloaded(offload_run):
    _, hits = offload_run
    for name in ("time-read", "set-timer", "ipi", "rfence", "misaligned",
                 "timer-interrupt"):
        assert hits.get(name, 0) > 0, f"{name} was not offloaded: {hits}"


def test_offload_keeps_virtual_mip_coherent(offload_run):
    samples, _ = offload_run
    mismatches = [
        f"{label}: physical SIP={physical:#x} but virtual CSR view={virtual:#x}"
        for label, physical, virtual in samples
        if physical != virtual
    ]
    assert not mismatches, "\n".join(mismatches)


def test_offload_self_ipi_defers_ssip_to_natural_delivery(offload_run):
    samples, hits = offload_run
    by_label = {label: (physical, virtual)
                for label, physical, virtual in samples}
    physical, virtual = by_label["ipi"]
    # A self-IPI pends as a machine-level MSI in the CLINT; SSIP appears
    # only when the MSI traps to the monitor's ``ipi-interrupt`` fast
    # path at the next architectural operation (and the kernel's SSI
    # handler then consumes it).  Right after the ecall neither view
    # shows SSIP — and both views agree, preserving coherence.
    assert not physical & c.MIP_SSIP
    assert not virtual & c.MIP_SSIP
    assert hits.get("ipi-interrupt", 0) >= 1
