"""The virtual CLINT must keep its own per-hart msip view.

Regression tests for monitor IPI traffic leaking into the firmware's
virtual CLINT: ``virtual_msip`` read the *physical* CLINT, so an IPI the
monitor injected on the OS's behalf (offload fast path) showed up in the
firmware's virtual MSIP — the firmware would observe machine software
interrupts it never sent, and the monitor's virtual-interrupt injection
logic would wake the virtual firmware for traffic that was never its
business.  The fix shadows msip per hart: firmware writes update the
shadow (and still pass through physically — an IPI must really interrupt
the target hart); monitor traffic touches only the physical CLINT.
"""

from __future__ import annotations

from repro.core.vcpu import World
from repro.hart import clint as clint_regs
from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def test_monitor_ipi_does_not_leak_into_virtual_msip():
    """A physical-only CLINT write (monitor fast-path IPI) must be
    invisible in the firmware's virtual msip view."""
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    vclint = system.miralis.vclint
    machine.clint.write(clint_regs.MSIP_BASE + 4 * 0, 4, 1)
    assert machine.clint.msip[0] == 1
    assert not vclint.virtual_msip(0), (
        "monitor-injected IPI leaked into the firmware's virtual MSIP view"
    )
    assert vclint._read(clint_regs.MSIP_BASE, 4) == 0


def test_firmware_msip_write_sets_both_views():
    """A firmware vclint msip store must update the virtual shadow AND
    physically interrupt the target hart."""
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    vclint = system.miralis.vclint
    vclint._write(clint_regs.MSIP_BASE + 4 * 1, 4, 1, 0)
    assert vclint.virtual_msip(1)
    assert machine.clint.msip[1] == 1
    assert vclint._read(clint_regs.MSIP_BASE + 4, 4) == 1
    vclint._write(clint_regs.MSIP_BASE + 4 * 1, 4, 0, 0)
    assert not vclint.virtual_msip(1)
    assert machine.clint.msip[1] == 0


def test_firmware_world_msi_forwarded_not_stormed():
    """A monitor-destined MSI arriving while the hart runs virtual
    firmware must be acked and forwarded as SSIP for the OS — never
    injected into the firmware, never left pending (interrupt storm)."""
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    miralis = system.miralis
    hart = machine.harts[0]
    vctx = miralis.vctx[0]
    assert miralis.world[0] == World.FIRMWARE  # pre-boot default
    machine.clint.write(clint_regs.MSIP_BASE, 4, 1)  # monitor IPI in flight
    mepc = hart.state.csr.mepc = 0x8020_0000
    miralis._handle_physical_interrupt(hart, vctx, c.IRQ_MSI, mepc)
    # Acked at the CLINT (no immediate re-trap) ...
    assert machine.clint.msip[0] == 0
    # ... forwarded to the OS's S-level view ...
    assert vctx.mip & c.MIP_SSIP
    assert hart.state.csr.mip_sw & c.MIP_SSIP
    # ... and NOT turned into a virtual machine-software interrupt.
    assert not vctx.mip & c.MIP_MSIP
    assert hart.state.pc == mepc
    assert miralis.world[0] == World.FIRMWARE


def test_offload_ipi_run_leaves_virtual_msip_clear():
    """End to end: a workload whose IPIs all ride the fast path leaves
    the firmware's virtual msip untouched for the whole run."""

    def workload(kernel, ctx):
        kernel.sbi_send_ipi(ctx, 0b1, 0)
        ctx.csrr(c.CSR_SSCRATCH)  # delivery point
        kernel.sbi_send_ipi(ctx, 0b1, 0)
        ctx.csrr(c.CSR_SSCRATCH)

    system = build_virtualized(VISIONFIVE2, workload=workload)
    system.run()
    assert system.kernel.software_interrupts == 2
    vclint = system.miralis.vclint
    for hartid in range(system.machine.config.num_harts):
        assert not vclint.virtual_msip(hartid)
