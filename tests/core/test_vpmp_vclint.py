"""PMP virtualization (Figure 5) and virtual CLINT unit tests."""

import pytest

from repro.core.vcpu import VirtContext, World
from repro.core.vclint import VirtualClint
from repro.core.vpmp import PmpVirtualizer, napot_power_of_two_cover
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa import constants as c
from repro.isa.bits import napot_encode, napot_range
from repro.isa.instructions import Instruction
from repro.policy.default import DefaultPolicy
from repro.spec.pmp import pmp_check
from repro.spec.platform import VISIONFIVE2

MIRALIS_REGION = Region("miralis", 0x8020_0000, 0x10_0000)


@pytest.fixture
def machine():
    return Machine(VISIONFIVE2)


@pytest.fixture
def vpmp(machine):
    from repro.core.config import MiralisConfig

    return PmpVirtualizer(machine, MIRALIS_REGION, MiralisConfig(), 0)


@pytest.fixture
def vctx(vpmp):
    ctx = VirtContext(VISIONFIVE2)
    ctx.virtual_pmp_count = vpmp.virtual_count
    return ctx


class TestLayout:
    def test_virtual_count(self, vpmp):
        # 8 physical - 2 guards - 0 policy - 1 zero - 1 all-memory = 4
        assert vpmp.virtual_count == 4

    def test_policy_entries_reduce_virtual_count(self, machine):
        from repro.core.config import MiralisConfig

        vpmp = PmpVirtualizer(machine, MIRALIS_REGION, MiralisConfig(), 2)
        assert vpmp.virtual_count == 2

    def test_too_many_reservations_rejected(self, machine):
        from repro.core.config import MiralisConfig

        with pytest.raises(ValueError):
            PmpVirtualizer(machine, MIRALIS_REGION, MiralisConfig(), 5)

    def test_napot_cover_rounds_up(self):
        pmpaddr = napot_power_of_two_cover(0x200_0000, 0xC000)
        base, size = napot_range(pmpaddr)
        assert base == 0x200_0000 and size == 0x10000


class TestGuards:
    def test_miralis_memory_blocked_in_both_worlds(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        for world in (World.FIRMWARE, World.OS):
            vpmp.install(hart, vctx, world, DefaultPolicy())
            mode = c.U_MODE if world == World.FIRMWARE else c.S_MODE
            result = pmp_check(
                hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
                MIRALIS_REGION.base, 8, c.AccessType.READ, mode, pmp_count=8,
            )
            assert not result.allowed

    def test_clint_blocked_in_firmware_world(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        vpmp.install(hart, vctx, World.FIRMWARE, DefaultPolicy())
        result = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            machine.clint.mtime_address, 8, c.AccessType.READ, c.U_MODE,
            pmp_count=8,
        )
        assert not result.allowed

    def test_protects_classification(self, vpmp, machine):
        assert vpmp.protects(MIRALIS_REGION.base) == "miralis"
        assert vpmp.protects(machine.clint.mtime_address) == "clint"
        assert vpmp.protects(0x8400_0000) is None
        # Straddling access counts as protected.
        assert vpmp.protects(MIRALIS_REGION.base - 4, size=8) == "miralis"


class TestWorldSemantics:
    def test_firmware_world_default_access(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        vpmp.install(hart, vctx, World.FIRMWARE, DefaultPolicy())
        result = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            0x8400_0000, 8, c.AccessType.WRITE, c.U_MODE, pmp_count=8,
        )
        assert result.allowed  # vM-mode sees M-like full access

    def test_unlocked_virtual_entry_rwx_in_firmware_world(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        # Firmware sets a no-permission entry over its own region: in real
        # M-mode an unlocked entry would not constrain it.
        vctx.pmpcfg[0] = int(c.PmpAddressMode.NAPOT) << c.PMP_A_SHIFT
        vctx.pmpaddr[0] = napot_encode(0x8000_0000, 0x10_0000)
        vpmp.install(hart, vctx, World.FIRMWARE, DefaultPolicy())
        result = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            0x8000_0000, 8, c.AccessType.READ, c.U_MODE, pmp_count=8,
        )
        assert result.allowed

    def test_virtual_entry_applies_in_os_world(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        vctx.pmpcfg[0] = int(c.PmpAddressMode.NAPOT) << c.PMP_A_SHIFT
        vctx.pmpaddr[0] = napot_encode(0x8000_0000, 0x10_0000)
        # All-memory grant behind it, as real firmware programs.
        vctx.pmpcfg[1] = (
            int(c.PmpAddressMode.NAPOT) << c.PMP_A_SHIFT
        ) | c.PMP_R | c.PMP_W | c.PMP_X
        vctx.pmpaddr[1] = (1 << 54) - 1
        vpmp.install(hart, vctx, World.OS, DefaultPolicy())
        blocked = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            0x8000_0000, 8, c.AccessType.READ, c.S_MODE, pmp_count=8,
        )
        allowed = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            0x8400_0000, 8, c.AccessType.READ, c.S_MODE, pmp_count=8,
        )
        assert not blocked.allowed
        assert allowed.allowed

    def test_locked_bit_stripped_physically(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        vctx.pmpcfg[0] = c.PMP_L | c.PMP_R
        vpmp.install(hart, vctx, World.OS, DefaultPolicy())
        assert all(not cfg & c.PMP_L for cfg in hart.state.csr.pmpcfg)

    def test_tor_zero_anchor(self, vpmp, vctx, machine):
        """Virtual PMP 0 in TOR mode starts at address 0 (§4.2)."""
        hart = machine.harts[0]
        vctx.pmpcfg[0] = (int(c.PmpAddressMode.TOR) << c.PMP_A_SHIFT) | c.PMP_R
        vctx.pmpaddr[0] = 0x1000 >> 2
        # Force some junk into the entry preceding the virtual block.
        vpmp.install(hart, vctx, World.OS, DefaultPolicy())
        anchor = vpmp.zero_entry_index
        assert hart.state.csr.pmpaddr[anchor] == 0
        result = pmp_check(
            hart.state.csr.pmpcfg, hart.state.csr.pmpaddr,
            0x0, 8, c.AccessType.READ, c.S_MODE, pmp_count=8,
        )
        assert result.allowed

    def test_install_returns_write_count(self, vpmp, vctx, machine):
        hart = machine.harts[0]
        writes_first = vpmp.install(hart, vctx, World.FIRMWARE, DefaultPolicy())
        writes_second = vpmp.install(hart, vctx, World.FIRMWARE, DefaultPolicy())
        assert writes_first > 0
        assert writes_second == 0  # nothing changed


class TestVirtualClint:
    @pytest.fixture
    def vclint(self, machine):
        return VirtualClint(machine)

    def test_mtime_read(self, vclint, machine):
        machine.charge(1_500_000)  # 1 ms at 1.5 GHz -> 4000 mtime ticks
        hart = machine.harts[0]
        instr = Instruction("ld", rd=5, rs1=1)
        value = vclint.emulate_access(hart, instr, machine.clint.mtime_address)
        assert value == machine.read_mtime() == 4000
        assert hart.state.get_xreg(5) == 4000

    def test_mtimecmp_write_programs_physical(self, vclint, machine):
        hart = machine.harts[0]
        hart.state.set_xreg(6, 999)
        instr = Instruction("sd", rs1=1, rs2=6)
        vclint.emulate_access(hart, instr, machine.clint.mtimecmp_address(0))
        assert vclint.mtimecmp[0] == 999
        assert machine.clint.mtimecmp[0] == 999

    def test_mtimecmp_readback(self, vclint, machine):
        hart = machine.harts[0]
        vclint.mtimecmp[0] = 0x1122_3344_5566_7788
        instr = Instruction("ld", rd=5, rs1=1)
        value = vclint.emulate_access(hart, instr, machine.clint.mtimecmp_address(0))
        assert value == 0x1122_3344_5566_7788

    def test_monitor_deadline_multiplexing(self, vclint, machine):
        vclint.mtimecmp[0] = 5000  # firmware deadline
        vclint.set_monitor_deadline(0, 3000)  # OS deadline via fast path
        assert machine.clint.mtimecmp[0] == 3000
        vclint.clear_monitor_deadline(0)
        assert machine.clint.mtimecmp[0] == 5000

    def test_msip_passthrough(self, vclint, machine):
        hart = machine.harts[0]
        hart.state.set_xreg(6, 1)
        instr = Instruction("sw", rs1=1, rs2=6)
        vclint.emulate_access(hart, instr, machine.clint.msip_address(1))
        assert machine.clint.msip[1] == 1

    def test_mtime_write_ignored(self, vclint, machine):
        hart = machine.harts[0]
        hart.state.set_xreg(6, 12345)
        instr = Instruction("sd", rs1=1, rs2=6)
        vclint.emulate_access(hart, instr, machine.clint.mtime_address)
        assert machine.read_mtime() == 0

    def test_bad_offset_raises(self, vclint, machine):
        hart = machine.harts[0]
        instr = Instruction("ld", rd=5, rs1=1)
        with pytest.raises(ValueError):
            vclint.emulate_access(hart, instr, machine.clint.base + 0x9000)

    def test_word_sized_mtimecmp_access(self, vclint, machine):
        hart = machine.harts[0]
        hart.state.set_xreg(6, 0xAAAA_BBBB)
        vclint.emulate_access(
            hart, Instruction("sw", rs1=1, rs2=6), machine.clint.mtimecmp_address(0)
        )
        hart.state.set_xreg(6, 0x1111_2222)
        vclint.emulate_access(
            hart, Instruction("sw", rs1=1, rs2=6),
            machine.clint.mtimecmp_address(0) + 4,
        )
        assert vclint.mtimecmp[0] == 0x1111_2222_AAAA_BBBB

    def test_virtual_mtip(self, vclint, machine):
        vclint.mtimecmp[0] = 100
        assert not vclint.virtual_mtip(0, 50)
        assert vclint.virtual_mtip(0, 100)
