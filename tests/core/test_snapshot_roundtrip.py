"""Property test (triage satellite S4): the watchdog activation
snapshot round-trips the *entire* virtual-context and per-hart vCLINT
state.

Replay determinism leans on this: a retried activation that silently
loses one CSR, one PMP shadow entry, or a pending self-IPI diverges
from a fresh replay of the same bundle — exactly the class of bug a
hand-enumerated field list invites.  The clobber below walks
``__dict__`` generically, so a future field added to ``VirtContext``
without snapshot support fails this test instead of slipping through.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.config import MiralisConfig  # noqa: E402
from repro.spec.platform import VISIONFIVE2  # noqa: E402
from repro.system import build_virtualized  # noqa: E402

# One shared system: hypothesis forbids function-scoped fixtures, and
# snapshot/restore must leave it pristine between examples anyway.
SYSTEM = build_virtualized(
    VISIONFIVE2,
    miralis_config=MiralisConfig(watchdog_enabled=True,
                                 offload_enabled=False),
)

# Attributes on VirtContext that are wiring, not state.
NON_STATE = {"platform", "hartid", "csr_write_hook"}

XLEN_MASK = (1 << 64) - 1

csr_values = st.integers(min_value=0, max_value=XLEN_MASK)


def _structural(value):
    """Deep-copy into plain comparable structures."""
    if isinstance(value, dict):
        return {key: _structural(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_structural(item) for item in value]
    return value


def _reference_state(vctx, vclint, hartid):
    state = {name: _structural(value)
             for name, value in vctx.__dict__.items()
             if name not in NON_STATE}
    state["__vclint__"] = _structural(vclint.snapshot_hart(hartid))
    return state


def _clobber(vctx, vclint, hartid):
    """Scramble every stateful attribute, generically over __dict__."""
    for name, value in list(vctx.__dict__.items()):
        if name in NON_STATE:
            continue
        if isinstance(value, bool):
            setattr(vctx, name, not value)
        elif isinstance(value, int):
            setattr(vctx, name, (value ^ 0x5A5A_5A5A_5A5A_5A5A) & XLEN_MASK)
        elif isinstance(value, list):
            setattr(vctx, name, [(item ^ 0x5A5A) & XLEN_MASK
                                 if isinstance(item, int) else item
                                 for item in value])
        elif isinstance(value, dict):
            setattr(vctx, name, {key: (item ^ 0x5A5A) & XLEN_MASK
                                 if isinstance(item, int) else item
                                 for key, item in value.items()})
    vclint.msip[hartid] = 1 - vclint.msip[hartid]
    vclint.mtimecmp[hartid] ^= 0x5A5A_5A5A


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_snapshot_restore_round_trips_everything(data):
    miralis = SYSTEM.miralis
    hart = SYSTEM.machine.harts[0]
    vctx = miralis.vctx[0]
    vclint = miralis.vclint
    watchdog = miralis.watchdog

    # Drive the context into an arbitrary state.
    for name in ("mstatus", "mtvec", "mepc", "mcause", "mtval",
                 "mscratch", "mie", "mip", "medeleg", "mideleg",
                 "stvec", "sepc", "scause", "stval", "sscratch",
                 "satp", "stimecmp", "mcycle", "minstret"):
        setattr(vctx, name, data.draw(csr_values, label=name))
    for index in data.draw(st.lists(st.integers(0, 63), max_size=8),
                           label="pmp_indices"):
        vctx.pmpcfg[index] = data.draw(st.integers(0, 0xFF))
        vctx.pmpaddr[index] = data.draw(csr_values)
    vctx.virtual_mode = data.draw(st.sampled_from(["M", "S", "U"]))
    vctx.virtual_pmp_count = data.draw(st.integers(0, 16))
    vctx.vendor["marchid"] = data.draw(csr_values)
    vctx.h_csrs[0x680] = data.draw(csr_values)
    vclint.msip[0] = data.draw(st.integers(0, 1))
    vclint.mtimecmp[0] = data.draw(csr_values)

    reference = _reference_state(vctx, vclint, hartid=0)
    snap = watchdog._activation_snapshot(hart, vctx)

    _clobber(vctx, vclint, hartid=0)
    assert _reference_state(vctx, vclint, hartid=0) != reference

    watchdog._activation_restore(hart, vctx, snap)
    restored = _reference_state(vctx, vclint, hartid=0)
    assert restored == reference, (
        "snapshot/restore lost state; a retried activation would "
        "diverge from a fresh replay of the same bundle"
    )


def test_snapshot_is_a_copy_not_a_view():
    """Mutating the live context after arming must not bleed into the
    saved snapshot (the watchdog restores *pre*-activation state)."""
    miralis = SYSTEM.miralis
    hart = SYSTEM.machine.harts[0]
    vctx = miralis.vctx[0]
    watchdog = miralis.watchdog

    vctx.pmpcfg[3] = 0x1F
    vctx.vendor["marchid"] = 7
    snap = watchdog._activation_snapshot(hart, vctx)
    vctx.pmpcfg[3] = 0x00
    vctx.vendor["marchid"] = 99
    watchdog._activation_restore(hart, vctx, snap)
    assert vctx.pmpcfg[3] == 0x1F
    assert vctx.vendor["marchid"] == 7
