"""Mixed valid/invalid SBI hart masks must deliver partially, then fail.

Regression tests for the offload fast path validating the *whole* mask
before delivering anything: ``_ipi_targets`` returned ``None`` as soon as
any masked hart was out of range, so ``send_ipi``/``rfence`` with a mask
mixing valid and invalid targets delivered *no* IPIs.  The firmware (and
therefore the native deployment and the no-offload slow path) walks the
mask in bit order and delivers to each valid target *until* it hits the
first invalid one — partial delivery the OS observes as real software
interrupts alongside the ``ERR_INVALID_PARAM`` return.
"""

from __future__ import annotations

from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.sbi.types import SbiCall
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized

U64 = (1 << 64) - 1
INVALID = sbi.SbiError.ERR_INVALID_PARAM


def _offload_parts():
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    hart = machine.harts[0]
    return system, machine, system.miralis.offload, hart, system.miralis.vctx[0]


def test_mixed_mask_delivers_valid_targets_before_failing():
    """mask=0x401 (hart 0 valid, hart 10 invalid): hart 0's MSIP must be
    set even though the call fails — matching the firmware's bit-order
    walk."""
    system, machine, offload, hart, vctx = _offload_parts()
    ret = offload._sbi_send_ipi(hart, vctx, 0x401, 0)
    assert not ret.is_success
    assert ret.error == INVALID
    assert machine.clint.msip[0] == 1, (
        "fast path validated the whole mask up front: the valid targets "
        "before the first invalid one were never delivered"
    )


def test_valid_targets_after_first_invalid_are_not_delivered():
    """mask covering harts 2,10,3 (bit order 2,3,10): harts 2 and 3 are
    delivered, then the walk fails at 10; nothing after bit order
    matters here, but targets below the invalid bit must be set."""
    system, machine, offload, hart, vctx = _offload_parts()
    ret = offload._sbi_send_ipi(hart, vctx, (1 << 2) | (1 << 3) | (1 << 10), 0)
    assert ret.error == INVALID
    assert machine.clint.msip[2] == 1
    assert machine.clint.msip[3] == 1


def test_invalid_first_bit_delivers_nothing():
    """mask_base pushes the lowest set bit out of range: no delivery."""
    system, machine, offload, hart, vctx = _offload_parts()
    ret = offload._sbi_send_ipi(hart, vctx, 0b11, machine.config.num_harts)
    assert ret.error == INVALID
    assert list(machine.clint.msip) == [0] * machine.config.num_harts


def test_rfence_mixed_mask_matches_ipi_semantics():
    """rfence shares the delivery walk: partial delivery, then failure."""
    system, machine, offload, hart, vctx = _offload_parts()
    call = SbiCall(eid=sbi.EXT_RFENCE, fid=sbi.FN_RFENCE_FENCE_I,
                   args=(0x21, 0))  # hart 0 valid, hart 5 invalid
    ret = offload._sbi_rfence(hart, vctx, call)
    assert ret.error == INVALID
    assert machine.clint.msip[0] == 1


def test_end_to_end_mixed_mask_ssi_matches_native():
    """The OS observes the partially delivered self-IPI as one SSI, the
    same count the native firmware produces for the same mask."""
    seen = {}

    def workload(kernel, ctx):
        error, _ = kernel.sbi_send_ipi(ctx, 0x401, 0)
        ctx.compute(200)  # delivery point
        seen["error"] = error
        seen["ssi"] = kernel.software_interrupts

    system = build_virtualized(VISIONFIVE2, workload=workload)
    system.run()
    assert seen["error"] == INVALID & U64
    assert seen["ssi"] == 1, (
        "virtualized+offload dropped the valid self-IPI that native "
        "firmware delivers before failing on the invalid target"
    )
