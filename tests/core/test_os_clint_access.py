"""OS-world CLINT MMIO accesses must behave as they do natively.

Regression tests for a virtualization hole: the native firmware's PMP
grants S-mode all memory outside the firmware region, so a native OS can
read ``mtime``, poke ``msip``, and program ``mtimecmp`` directly.  Under
Miralis those accesses fault (the monitor protects the CLINT) and were
re-injected into the virtualized firmware as access faults — which the
firmware has no handler for, so the machine died with ``firmware panic:
unhandled exception 5/7`` where native simply performs the access.

The fix emulates OS-world CLINT accesses in the monitor via the virtual
CLINT: reads serve the physical device state, ``msip`` writes deliver
architecturally, and ``mtimecmp`` writes program the virtual comparator
so the multiplexed physical timer fires and the usual MTI paths (fast
path or virtual firmware injection) forward the tick.
"""

from __future__ import annotations

import pytest

from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized

U64 = (1 << 64) - 1


def _run(workload, virtualized, offload=True):
    builder = build_virtualized if virtualized else build_native
    kwargs = {"offload": offload} if virtualized else {}
    system = builder(VISIONFIVE2, workload=workload, **kwargs)
    reason = system.run()
    return system, reason


DEPLOYMENTS = [
    pytest.param(True, True, id="virt-offload"),
    pytest.param(True, False, id="virt-no-offload"),
    pytest.param(False, True, id="native"),
]


@pytest.mark.parametrize("virtualized,offload", DEPLOYMENTS)
def test_direct_mtime_read(virtualized, offload):
    seen = {}

    def workload(kernel, ctx):
        mt = kernel.machine.clint.mtime_address
        first = ctx.load(mt, size=8)
        second = ctx.load(mt, size=8)
        seen["monotone"] = second >= first

    _, reason = _run(workload, virtualized, offload)
    assert reason.startswith("sbi system reset")
    assert seen["monotone"]


@pytest.mark.parametrize("virtualized,offload", DEPLOYMENTS)
def test_direct_msip_write_delivers_ssi(virtualized, offload):
    seen = {}

    def workload(kernel, ctx):
        msip0 = kernel.machine.clint.msip_address(0)
        ctx.store(msip0, 1, size=4)
        ctx.compute(400)  # delivery point
        seen["ssi"] = kernel.software_interrupts
        seen["msip_after"] = ctx.load(msip0, size=4)

    _, reason = _run(workload, virtualized, offload)
    assert reason.startswith("sbi system reset")
    assert seen["ssi"] == 1
    assert seen["msip_after"] == 0  # acked by whoever forwarded it


@pytest.mark.parametrize("virtualized,offload", DEPLOYMENTS)
def test_direct_mtimecmp_write_arms_timer(virtualized, offload):
    seen = {}

    def workload(kernel, ctx):
        mtc0 = kernel.machine.clint.mtimecmp_address(0)
        now = kernel.read_time(ctx)
        ctx.store(mtc0, now + 100, size=8)
        ctx.csrs(c.CSR_SIE, c.MIP_STIP)
        for _ in range(2_000):
            if kernel.timer_ticks:
                break
            ctx.compute(500)
        seen["ticks"] = kernel.timer_ticks

    _, reason = _run(workload, virtualized, offload)
    assert reason.startswith("sbi system reset")
    assert seen["ticks"] >= 1


@pytest.mark.parametrize("virtualized,offload", DEPLOYMENTS)
def test_mtimecmp_read_after_sbi_arm(virtualized, offload):
    """After an SBI set_timer, a direct mtimecmp read must see the armed
    deadline (natively the comparator holds exactly that value)."""
    seen = {}

    def workload(kernel, ctx):
        now = kernel.read_time(ctx)
        deadline = now + 10_000_000
        kernel.sbi_set_timer(ctx, deadline)
        mtc0 = kernel.machine.clint.mtimecmp_address(0)
        seen["comparator"] = ctx.load(mtc0, size=8)
        seen["deadline"] = deadline

    _, reason = _run(workload, virtualized, offload)
    assert reason.startswith("sbi system reset")
    assert seen["comparator"] == seen["deadline"]


@pytest.mark.parametrize("virtualized,offload", DEPLOYMENTS)
def test_remote_msip_read_after_sbi_ipi(virtualized, offload):
    """An IPI to a parked hart leaves its MSIP readable as pending."""
    seen = {}

    def workload(kernel, ctx):
        kernel.sbi_send_ipi(ctx, 0b10, 0)  # hart 1, parked
        ctx.compute(100)
        seen["msip1"] = ctx.load(kernel.machine.clint.msip_address(1), size=4)

    _, reason = _run(workload, virtualized, offload)
    assert reason.startswith("sbi system reset")
    assert seen["msip1"] == 1
