"""Unit tests for the fast path and world-switch subsystems."""

import pytest

from repro.core.vcpu import World
from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


@pytest.fixture
def booted_system():
    """A virtualized system paused right at the start of the OS workload."""
    box = {}

    def workload(kernel, ctx):
        box["kernel"] = kernel
        box["ctx"] = ctx
        hook = box.get("hook")
        if hook is not None:
            hook(kernel, ctx)

    system = build_virtualized(VISIONFIVE2, workload=workload)
    box["system"] = system
    return system, box


def run_with(system_box, hook):
    system, box = system_box
    box["hook"] = hook
    system.run()
    return system


class TestFastPathCounters:
    def test_time_read_hits(self, booted_system):
        system = run_with(
            booted_system,
            lambda kernel, ctx: [kernel.read_time(ctx) for _ in range(7)],
        )
        assert system.miralis.offload.hits["time-read"] >= 7

    def test_set_timer_arms_monitor_deadline(self, booted_system):
        def hook(kernel, ctx):
            now = kernel.read_time(ctx)
            kernel.sbi_set_timer(ctx, now + 100_000)
            vclint = booted_system[0].miralis.vclint
            assert booted_system[0].miralis.offload.timer_armed[0]
            assert vclint.monitor_mtimecmp[0] == now + 100_000

        run_with(booted_system, hook)

    def test_rfence_counts(self, booted_system):
        system = run_with(
            booted_system,
            lambda kernel, ctx: kernel.sbi_remote_fence_i(ctx, 1, 0),
        )
        assert system.miralis.offload.hits["rfence"] == 1

    def test_unknown_sbi_not_offloaded(self, booted_system):
        def hook(kernel, ctx):
            kernel.sbi_call(ctx, 0x999, 0)

        system = run_with(booted_system, hook)
        assert system.machine.stats.world_switches >= 2

    def test_hsm_not_offloaded(self, booted_system):
        """HSM calls are rare and must reach the real firmware."""
        def hook(kernel, ctx):
            kernel.sbi_call(ctx, sbi.EXT_HSM, sbi.FN_HSM_HART_GET_STATUS, 0)

        system = run_with(booted_system, hook)
        assert system.firmware.sbi_counts["hsm.2"] == 1

    def test_csrrw_to_time_not_offloaded(self, booted_system):
        """A *write* to the time CSR is genuinely illegal: neither the fast
        path nor the firmware's rdtime emulation may swallow it."""
        from repro.isa.instructions import Instruction

        counts = {}

        def hook(kernel, ctx):
            system = booted_system[0]
            counts["before"] = system.miralis.offload.hits.get("time-read", 0)
            ctx.exec(Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_TIME))

        system, box = booted_system
        box["hook"] = hook
        reason = system.run()
        assert system.miralis.offload.hits.get("time-read", 0) == \
            counts["before"]
        assert "panic" in reason or system.kernel.unexpected_traps


class TestWorldSwitchStateTransfer:
    def test_os_satp_visible_to_firmware_and_restored(self, booted_system):
        captured = {}

        def hook(kernel, ctx):
            ctx.csrw(c.CSR_SATP, (8 << 60) | 0x1234)
            kernel.sbi_call(ctx, 0x999, 0)  # force a world switch
            captured["satp_after"] = ctx.csrr(c.CSR_SATP)

        system = run_with(booted_system, hook)
        assert captured["satp_after"] == (8 << 60) | 0x1234

    def test_firmware_stip_reaches_os(self, booted_system):
        """A virtual STIP raised *while the firmware runs* must be pending
        physically for the OS after the switch back (timer multiplexing)."""
        def hook(kernel, ctx):
            miralis = booted_system[0].miralis
            hart = ctx.hart
            vctx = miralis.vctx[0]
            miralis.switcher.enter_firmware(hart, vctx)
            vctx.mip |= c.MIP_STIP  # the firmware's `csrs mip, STIP`
            miralis.switcher.enter_os(hart, vctx, c.S_MODE)
            assert hart.state.csr.mip & c.MIP_STIP

        run_with(booted_system, hook)

    def test_sie_roundtrip_through_switch(self, booted_system):
        def hook(kernel, ctx):
            ctx.csrw(c.CSR_SIE, c.MIP_SSIP)
            kernel.sbi_call(ctx, 0x999, 0)
            assert ctx.csrr(c.CSR_SIE) == c.MIP_SSIP

        run_with(booted_system, hook)

    def test_worlds_alternate(self, booted_system):
        miralis = booted_system[0].miralis

        def hook(kernel, ctx):
            assert miralis.world[0] == World.OS

        run_with(booted_system, hook)
        # After shutdown the machine halted from the firmware SRST handler:
        assert miralis.world[0] == World.FIRMWARE

    def test_switch_counts_symmetric(self, booted_system):
        def hook(kernel, ctx):
            for _ in range(3):
                kernel.sbi_call(ctx, 0x999, 0)

        system = run_with(booted_system, hook)
        # Every OS->firmware switch has a firmware->OS counterpart (the
        # final SRST switch legitimately never returns).
        assert system.machine.stats.world_switches % 2 in (0, 1)
        assert system.machine.stats.world_switches >= 6


class TestMieSynchronization:
    def test_masked_virtual_timer_masks_physical(self, booted_system):
        """vMIE gating prevents interrupt storms (§4.1's check ordering)."""
        def hook(kernel, ctx):
            miralis = booted_system[0].miralis
            vctx = miralis.vctx[0]
            # The firmware masked its virtual timer; no OS timer armed.
            vctx.mie &= ~c.MIP_MTIP
            miralis.offload.timer_armed[0] = False
            miralis._sync_physical_mie(ctx.hart, vctx)
            assert not ctx.hart.state.csr.mie & c.MIP_MTIP

        run_with(booted_system, hook)

    def test_offload_timer_keeps_physical_mtie(self, booted_system):
        def hook(kernel, ctx):
            now = kernel.read_time(ctx)
            kernel.sbi_set_timer(ctx, now + 100_000)
            assert ctx.hart.state.csr.mie & c.MIP_MTIP

        run_with(booted_system, hook)
