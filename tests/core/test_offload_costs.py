"""Pin the per-class fast-path charges to the configured costs (Table 5).

Each of the five offloaded trap classes must charge *exactly* its
configured cost plus the documented hardware surcharges — in particular
rfence must not also pay the IPI-class cost when it reuses the IPI
delivery machinery.
"""

import pytest

from repro.isa import constants as c
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction
from repro.sbi import constants as sbi
from repro.sbi.types import SbiCall
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


@pytest.fixture
def offload_parts():
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    return system.miralis.offload, machine, machine.harts[0]


@pytest.fixture
def vctx(offload_parts):
    offload, machine, hart = offload_parts
    return offload.miralis.vctx[hart.hartid]


def test_time_read_charge(offload_parts):
    offload, machine, hart = offload_parts
    word = encode(Instruction("csrrs", rd=5, rs1=0, csr=c.CSR_TIME))
    hart.state.csr.write(c.CSR_MTVAL, word)
    before = hart.cycles
    assert offload._handle_illegal(hart)
    assert hart.cycles - before == (
        offload.costs.fastpath_time_read + hart.cycle_model.mmio_access
    )


def test_set_timer_charge(offload_parts, vctx):
    offload, machine, hart = offload_parts
    before = hart.cycles
    ret = offload._sbi_set_timer(hart, vctx, machine.read_mtime() + 100_000)
    assert ret.is_success
    assert hart.cycles - before == (
        offload.costs.fastpath_set_timer + hart.cycle_model.mmio_access
    )


def test_ipi_self_charge(offload_parts, vctx):
    offload, machine, hart = offload_parts
    before = hart.cycles
    ret = offload._sbi_send_ipi(hart, vctx, 0b1, 0)  # hart 0 == the caller
    assert ret.is_success
    # Self-delivery goes through the CLINT like any other target, so it
    # pays the same MMIO cost as a remote IPI.
    assert hart.cycles - before == (
        offload.costs.fastpath_ipi + hart.cycle_model.mmio_access
    )


def test_ipi_remote_charge(offload_parts, vctx):
    offload, machine, hart = offload_parts
    before = hart.cycles
    ret = offload._sbi_send_ipi(hart, vctx, 0b10, 0)  # hart 1: one CLINT write
    assert ret.is_success
    assert hart.cycles - before == (
        offload.costs.fastpath_ipi + hart.cycle_model.mmio_access
    )


def test_rfence_self_charge(offload_parts, vctx):
    """The seeded double-charge: rfence must NOT also pay fastpath_ipi."""
    offload, machine, hart = offload_parts
    call = SbiCall(eid=sbi.EXT_RFENCE, fid=sbi.FN_RFENCE_FENCE_I, args=(0b1, 0))
    before = hart.cycles
    ret = offload._sbi_rfence(hart, vctx, call)
    assert ret.is_success
    assert hart.cycles - before == (
        offload.costs.fastpath_rfence + hart.cycle_model.memory_fence
        + hart.cycle_model.mmio_access  # self-delivery via the CLINT
    )


def test_rfence_remote_charge(offload_parts, vctx):
    offload, machine, hart = offload_parts
    call = SbiCall(
        eid=sbi.EXT_RFENCE, fid=sbi.FN_RFENCE_SFENCE_VMA, args=(0b10, 0)
    )
    before = hart.cycles
    ret = offload._sbi_rfence(hart, vctx, call)
    assert ret.is_success
    assert hart.cycles - before == (
        offload.costs.fastpath_rfence
        + hart.cycle_model.memory_fence
        + hart.cycle_model.mmio_access
    )


def test_misaligned_charge(offload_parts):
    offload, machine, hart = offload_parts
    base = machine.config.ram_base
    mepc = base + 0x500
    address = base + 0x9001  # misaligned for a 4-byte load
    machine.ram.write(mepc, 4, encode(Instruction("lw", rd=5, rs1=6)))
    hart.state.csr.write(c.CSR_MEPC, mepc)
    hart.state.csr.write(c.CSR_MTVAL, address)
    before = hart.cycles
    assert offload._handle_misaligned(hart)
    assert hart.cycles - before == offload.costs.fastpath_misaligned + 4
