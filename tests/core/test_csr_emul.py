"""Unit tests for the virtual CSR emulation (Miralis's per-CSR logic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.csr_emul import CsrEffect, VirtCsrError, read_csr, write_csr
from repro.core.vcpu import VirtContext, World
from repro.isa import constants as c
from repro.spec.platform import PREMIER_P550, RVA23_MACHINE, VISIONFIVE2

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@pytest.fixture
def vctx():
    ctx = VirtContext(VISIONFIVE2)
    ctx.virtual_pmp_count = 2
    return ctx


class TestReads:
    def test_identity_registers(self, vctx):
        assert read_csr(vctx, c.CSR_MHARTID) == 0
        assert read_csr(vctx, c.CSR_MVENDORID) == VISIONFIVE2.mvendorid
        assert read_csr(vctx, c.CSR_MISA) == VISIONFIVE2.misa

    def test_time_returns_mtime(self, vctx_rva=None):
        ctx = VirtContext(RVA23_MACHINE)
        assert read_csr(ctx, c.CSR_TIME, mtime=777) == 777

    def test_time_missing_on_vf2(self, vctx):
        with pytest.raises(VirtCsrError):
            read_csr(vctx, c.CSR_TIME, mtime=777)

    def test_sstatus_view(self, vctx):
        write_csr(vctx, c.CSR_MSTATUS, c.MSTATUS_SIE | c.MSTATUS_MIE)
        sstatus = read_csr(vctx, c.CSR_SSTATUS)
        assert sstatus & c.MSTATUS_SIE
        assert not sstatus & c.MSTATUS_MIE

    def test_unknown_csr(self, vctx):
        with pytest.raises(VirtCsrError):
            read_csr(vctx, 0x123)


class TestWrites:
    def test_mstatus_mpp_warl(self, vctx):
        write_csr(vctx, c.CSR_MSTATUS, 2 << 11)
        assert (vctx.mstatus >> 11) & 3 == 3  # kept reset M

    def test_mideleg_hardwired(self, vctx):
        write_csr(vctx, c.CSR_MIDELEG, 0)
        assert vctx.mideleg == c.MIDELEG_MASK

    def test_read_only_raises(self, vctx):
        with pytest.raises(VirtCsrError):
            write_csr(vctx, c.CSR_MHARTID, 1)

    def test_mie_effect(self, vctx):
        assert write_csr(vctx, c.CSR_MIE, c.MIP_MTIP) & CsrEffect.INTERRUPTS

    def test_pmp_effect(self, vctx):
        assert write_csr(vctx, c.CSR_PMPADDR0, 0x1000) & CsrEffect.PMP

    def test_vendor_csr_roundtrip(self):
        ctx = VirtContext(PREMIER_P550)
        write_csr(ctx, 0x7C0, 0xAB)
        assert read_csr(ctx, 0x7C0) == 0xAB

    def test_h_csr_masked(self):
        ctx = VirtContext(PREMIER_P550)
        write_csr(ctx, c.CSR_VSEPC, 0x1003)
        assert read_csr(ctx, c.CSR_VSEPC) == 0x1000

    def test_stimecmp_requires_sstc(self, vctx):
        with pytest.raises(VirtCsrError):
            write_csr(vctx, c.CSR_STIMECMP, 100)
        ctx = VirtContext(RVA23_MACHINE)
        assert write_csr(ctx, c.CSR_STIMECMP, 100) & CsrEffect.TIMER


class TestVirtualPmp:
    def test_write_within_virtual_count(self, vctx):
        write_csr(vctx, c.CSR_PMPADDR0, 0x999)
        assert vctx.pmpaddr[0] == 0x999

    def test_write_beyond_virtual_count_ignored(self, vctx):
        write_csr(vctx, c.CSR_PMPADDR0 + 5, 0x999)
        assert vctx.pmpaddr[5] == 0
        assert read_csr(vctx, c.CSR_PMPADDR0 + 5) == 0

    def test_pmpcfg_w_without_r_rejected(self, vctx):
        write_csr(vctx, c.CSR_PMPCFG0, c.PMP_W)
        assert vctx.pmpcfg[0] == 0

    def test_locked_entry_immutable(self, vctx):
        write_csr(vctx, c.CSR_PMPCFG0, c.PMP_L | c.PMP_R)
        write_csr(vctx, c.CSR_PMPCFG0, c.PMP_R | c.PMP_W | c.PMP_X)
        assert vctx.pmpcfg[0] == c.PMP_L | c.PMP_R

    def test_probing_works_on_virtual_platform(self, vctx):
        """The OpenSBI probe loop sees exactly virtual_pmp_count entries."""
        usable = 0
        for index in range(16):
            write_csr(vctx, c.pmpaddr_csr(index), (1 << 54) - 1)
            if read_csr(vctx, c.pmpaddr_csr(index)) == 0:
                break
            usable += 1
            write_csr(vctx, c.pmpaddr_csr(index), 0)
        assert usable == 2


class TestSnapshot:
    def test_snapshot_restore(self, vctx):
        write_csr(vctx, c.CSR_MSCRATCH, 0x42)
        snap = vctx.snapshot()
        write_csr(vctx, c.CSR_MSCRATCH, 0)
        vctx.restore(snap)
        assert read_csr(vctx, c.CSR_MSCRATCH) == 0x42

    @given(u64)
    def test_mstatus_writes_never_corrupt_reserved(self, value):
        ctx = VirtContext(VISIONFIVE2)
        write_csr(ctx, c.CSR_MSTATUS, value)
        reserved = ~(
            c.MSTATUS_WRITABLE_MASK | c.MSTATUS_UXL | c.MSTATUS_SXL | c.MSTATUS_SD
        ) & ((1 << 64) - 1)
        assert ctx.mstatus & reserved == 0


class TestViews:
    def test_sie_view_follows_mideleg(self, vctx):
        write_csr(vctx, c.CSR_MIE, c.MIP_MASK)
        assert read_csr(vctx, c.CSR_SIE) == c.SIP_MASK  # mideleg hardwired

    def test_sip_write_limited(self, vctx):
        write_csr(vctx, c.CSR_SIP, c.SIP_MASK)
        assert vctx.mip == c.MIP_SSIP

    def test_mip_write_mask(self, vctx):
        write_csr(vctx, c.CSR_MIP, (1 << 64) - 1)
        assert vctx.mip == c.MIP_SSIP | c.MIP_STIP | c.MIP_SEIP
