"""Self-targeted IPIs must travel through the CLINT like any other IPI.

Regression tests for the offload fast path dropping the caller from the
delivery set: ``_deliver_ipi`` special-cased ``target == hart.hartid`` by
raising SSIP directly, so SBI ``send_ipi`` with the caller in the mask
never set the caller's MSIP.  The architectural contract (and the slow
path through the virtualized firmware, which writes ``msip`` for every
target) is that *every* masked hart gets a machine software interrupt;
the caller's then travels the normal path — MSIP pends, the monitor's
``ipi-interrupt`` fast path acks it and forwards SSIP to the OS.
"""

from __future__ import annotations

from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.sbi.types import SbiCall
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized

U64 = (1 << 64) - 1


def _offload_parts():
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    hart = machine.harts[0]
    return system, machine, system.miralis.offload, hart, system.miralis.vctx[0]


def test_self_ipi_sets_caller_msip():
    """A self-only mask must set the caller's own MSIP in the CLINT."""
    system, machine, offload, hart, vctx = _offload_parts()
    ret = offload._sbi_send_ipi(hart, vctx, 0b1, 0)
    assert ret.is_success
    assert machine.clint.msip[0] == 1, (
        "self-targeted IPI was dropped by the fast path (caller's MSIP "
        "not set in the CLINT)"
    )


def test_all_harts_mask_includes_caller():
    """mask_base=-1 (all harts) must deliver to the caller as well."""
    system, machine, offload, hart, vctx = _offload_parts()
    ret = offload._sbi_send_ipi(hart, vctx, 0, U64)
    assert ret.is_success
    assert list(machine.clint.msip) == [1] * machine.config.num_harts


def test_rfence_self_mask_sets_caller_msip():
    """rfence reuses IPI delivery and must also include the caller."""
    system, machine, offload, hart, vctx = _offload_parts()
    call = SbiCall(eid=sbi.EXT_RFENCE, fid=sbi.FN_RFENCE_FENCE_I, args=(0b1, 0))
    ret = offload._sbi_rfence(hart, vctx, call)
    assert ret.is_success
    assert machine.clint.msip[0] == 1


def test_self_ipi_delivered_through_msi_fast_path():
    """End to end: the caller's self-IPI arrives as a physical MSI that
    the ``ipi-interrupt`` fast path forwards to the OS as one SSI."""
    seen = {}

    def workload(kernel, ctx):
        kernel.sbi_send_ipi(ctx, 0b1, 0)
        ctx.csrr(c.CSR_SSCRATCH)  # delivery point: MSI -> SSIP -> SSI
        seen["ssi"] = kernel.software_interrupts

    system = build_virtualized(VISIONFIVE2, workload=workload)
    system.run()
    hits = dict(system.miralis.offload.hits)
    assert seen["ssi"] == 1
    assert hits.get("ipi-interrupt", 0) >= 1, (
        f"self-IPI bypassed the CLINT: no MSI forwarding hit recorded "
        f"({hits})"
    )


def test_self_and_remote_mask_counts_one_local_ssi():
    """A mask containing caller + remote harts: the caller still gets
    exactly one SSI, and the remote harts' MSIPs are set physically."""
    seen = {}

    def workload(kernel, ctx):
        kernel.sbi_send_ipi(ctx, 0b11, 0)  # hart 0 (caller) + hart 1
        ctx.csrr(c.CSR_SSCRATCH)
        seen["ssi"] = kernel.ssi_by_hart[0]

    system = build_virtualized(VISIONFIVE2, workload=workload,
                               start_secondaries=True)
    system.run()
    hits = dict(system.miralis.offload.hits)
    assert seen["ssi"] == 1
    assert hits.get("ipi-interrupt", 0) >= 1
    # The remote hart was parked; the legacy synchronous servicing path
    # consumed its MSIP — the IPI really reached it.
    assert system.kernel.ssi_by_hart[1] == 1
