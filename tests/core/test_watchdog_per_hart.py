"""Watchdog and TrapStats recovery accounting must be keyed by hart.

Regression tests for globally-keyed counters: a secondary hart caught in
a fault loop bumped the same ``Counter`` as hart 0, so per-hart health
could not be told apart — chaos runs against multi-hart plans attributed
every secondary-hart recovery to the boot hart.  The aggregate counters
stay (dashboards and existing tests key off them); per-hart views are
now first class and must always sum to the aggregate.
"""

from __future__ import annotations

import pytest

from repro.core.config import MiralisConfig
from repro.hart.program import FirmwareRecovered
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def _watchdog_config(**overrides) -> MiralisConfig:
    params = dict(
        offload_enabled=False,
        watchdog_enabled=True,
        halt_on_violation=False,
        vm_trap_budget=200,
        max_firmware_retries=2,
    )
    params.update(overrides)
    return MiralisConfig(**params)


def _armed(hartid: int):
    system = build_virtualized(VISIONFIVE2, miralis_config=_watchdog_config())
    watchdog = system.miralis.watchdog
    hart = system.machine.harts[hartid]
    vctx = system.miralis.vctx[hartid]
    watchdog.arm_boot(hart, vctx)
    return system, watchdog, hart, vctx


def test_secondary_hart_recovery_not_attributed_to_hart0():
    system, watchdog, hart, vctx = _armed(1)
    with pytest.raises(FirmwareRecovered):
        watchdog.recover(hart, vctx, "synthetic secondary fault loop")
    assert watchdog.hart_counters[1]["recoveries"] == 1
    assert watchdog.hart_counters[1]["retries"] == 1
    assert watchdog.hart_counters[0]["recoveries"] == 0, (
        "secondary-hart recovery mis-attributed to hart 0"
    )
    # The aggregate view is preserved for existing consumers.
    assert watchdog.counters["recoveries"] == 1
    assert watchdog.counters["retries"] == 1


def test_detector_counters_keyed_by_hart():
    system, watchdog, hart, vctx = _armed(1)
    budget = watchdog.config.vm_trap_budget
    with pytest.raises(FirmwareRecovered):
        for _ in range(budget + 1):
            watchdog.note_vm_trap(hart, vctx)
    assert watchdog.hart_counters[1]["detect:trap-budget"] == 1
    assert watchdog.hart_counters[0]["detect:trap-budget"] == 0
    assert watchdog.counters["detect:trap-budget"] == 1


def test_stats_recovery_counts_keyed_by_hart():
    system, watchdog, hart, vctx = _armed(2)
    stats = system.machine.stats
    with pytest.raises(FirmwareRecovered):
        watchdog.recover(hart, vctx, "synthetic")
    assert stats.recovery_counts_by_hart[2]["recoveries"] == 1
    assert stats.recovery_counts_by_hart[0]["recoveries"] == 0
    assert stats.recovery_counts["recoveries"] == 1


def test_per_hart_counters_sum_to_aggregate():
    system, watchdog, hart, vctx = _armed(1)
    with pytest.raises(FirmwareRecovered):
        watchdog.recover(hart, vctx, "synthetic")
    hart0 = system.machine.harts[0]
    vctx0 = system.miralis.vctx[0]
    watchdog.arm_boot(hart0, vctx0)
    with pytest.raises(FirmwareRecovered):
        watchdog.recover(hart0, vctx0, "synthetic")
    for key in watchdog.counters:
        total = sum(per_hart[key] for per_hart in watchdog.hart_counters)
        assert total == watchdog.counters[key], key
    assert watchdog.summary()["hart_counters"] == [
        dict(per_hart) for per_hart in watchdog.hart_counters
    ]
