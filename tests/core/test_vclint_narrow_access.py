"""Byte-granular virtual CLINT accesses (§4.3 regression).

Firmware is free to read ``mtime``/``mtimecmp`` with sub-word loads; the
virtual CLINT must emulate them instead of faulting.
"""

import pytest

from repro.hart import clint as clint_regs
from repro.isa.instructions import Instruction
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized

U64 = (1 << 64) - 1


@pytest.fixture
def vclint_parts():
    system = build_virtualized(VISIONFIVE2)
    machine = system.machine
    machine.charge(machine.config.frequency_hz)  # 1 simulated second
    return system.miralis.vclint, machine, machine.harts[0]


def _load(vclint, hart, mnemonic, address):
    return vclint.emulate_access(hart, Instruction(mnemonic, rd=5), address)


def _sign_extend(value, size):
    sign = 1 << (size * 8 - 1)
    if value & sign:
        value |= U64 & ~((1 << (size * 8)) - 1)
    return value


class TestNarrowMtimeReads:
    def test_lb_on_each_mtime_byte(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        mtime = machine.read_mtime()
        base = machine.clint.base + clint_regs.MTIME_OFFSET
        for byte in range(8):
            expected = _sign_extend((mtime >> (8 * byte)) & 0xFF, 1)
            assert _load(vclint, hart, "lb", base + byte) == expected

    def test_lh_on_mtime_halfwords(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        mtime = machine.read_mtime()
        base = machine.clint.base + clint_regs.MTIME_OFFSET
        for half in range(4):
            expected = _sign_extend((mtime >> (16 * half)) & 0xFFFF, 2)
            assert _load(vclint, hart, "lh", base + 2 * half) == expected

    def test_lbu_is_zero_extended(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        mtime = machine.read_mtime()
        base = machine.clint.base + clint_regs.MTIME_OFFSET
        assert _load(vclint, hart, "lbu", base) == mtime & 0xFF


class TestNarrowMtimecmpAccess:
    def test_lb_on_mtimecmp_byte(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        base = machine.clint.base + clint_regs.MTIMECMP_BASE
        vclint._write(clint_regs.MTIMECMP_BASE, 8, 0x1122_3344_5566_8899, 0)
        assert _load(vclint, hart, "lbu", base + 2) == 0x66
        assert _load(vclint, hart, "lb", base) == _sign_extend(0x99, 1)

    def test_sb_merges_into_shadow_mtimecmp(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        vclint._write(clint_regs.MTIMECMP_BASE, 8, 0x1122_3344_5566_7788, 0)
        hart.state.set_xreg(6, 0xAB)
        vclint.emulate_access(
            hart,
            Instruction("sb", rs1=0, rs2=6),
            machine.clint.base + clint_regs.MTIMECMP_BASE + 3,
        )
        assert vclint.mtimecmp[0] == 0x1122_3344_AB66_7788

    def test_unmapped_offset_still_faults(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        with pytest.raises(ValueError):
            _load(vclint, hart, "lb", machine.clint.base + 0x2000)

    def test_access_straddling_a_register_faults(self, vclint_parts):
        vclint, machine, hart = vclint_parts
        with pytest.raises(ValueError):
            _load(
                vclint, hart, "lh",
                machine.clint.base + clint_regs.MTIME_OFFSET + 7,
            )


class TestPhysicalClintNarrowAccess:
    """The physical device model accepts the same narrow accesses, so the
    native and virtualized deployments stay architecturally comparable."""

    def test_narrow_mtime_read(self, vclint_parts):
        _vclint, machine, _hart = vclint_parts
        mtime = machine.read_mtime()
        got = machine.clint.read(clint_regs.MTIME_OFFSET + 2, 1)
        assert got == (mtime >> 16) & 0xFF

    def test_narrow_mtimecmp_write_merges(self, vclint_parts):
        _vclint, machine, _hart = vclint_parts
        machine.clint.write(clint_regs.MTIMECMP_BASE, 8, 0x1111_2222_3333_4444)
        machine.clint.write(clint_regs.MTIMECMP_BASE + 1, 1, 0xEE)
        assert machine.clint.mtimecmp[0] == 0x1111_2222_3333_EE44
