"""Unit tests for the privileged-instruction emulator."""

import pytest

from repro.core.emulator import (
    EmulationResult,
    VirtualTrapError,
    emulate_privileged,
    inject_virtual_trap,
    virtual_mret,
    virtual_sret,
)
from repro.core.vcpu import VirtContext
from repro.isa import constants as c
from repro.isa.instructions import Instruction
from repro.spec.platform import VISIONFIVE2

U64 = (1 << 64) - 1


@pytest.fixture
def vctx():
    return VirtContext(VISIONFIVE2)


def emulate(vctx, instr, pc=0x8000_0000, gprs=None, mtime=0):
    gprs = gprs if gprs is not None else [0] * 32

    def read(i):
        return gprs[i]

    def write(i, v):
        if i:
            gprs[i] = v & U64

    result = emulate_privileged(vctx, instr, pc, read, write, mtime)
    return result, gprs


class TestCsrEmulation:
    def test_csrrw(self, vctx):
        vctx.mscratch = 0x111
        gprs = [0] * 32
        gprs[2] = 0x222
        result, gprs = emulate(
            vctx, Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_MSCRATCH), gprs=gprs
        )
        assert gprs[1] == 0x111
        assert vctx.mscratch == 0x222
        assert result.next_pc == 0x8000_0004

    def test_csrrs_x0_reads_only(self, vctx):
        vctx.mscratch = 0x42
        result, gprs = emulate(
            vctx, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_MSCRATCH)
        )
        assert gprs[1] == 0x42
        assert vctx.mscratch == 0x42

    def test_csrrwi(self, vctx):
        result, gprs = emulate(
            vctx, Instruction("csrrwi", rd=1, rs1=0x15, csr=c.CSR_MSCRATCH)
        )
        assert vctx.mscratch == 0x15

    def test_illegal_csr_raises_virtual_trap(self, vctx):
        with pytest.raises(VirtualTrapError) as excinfo:
            emulate(vctx, Instruction("csrrw", rd=1, rs1=2, csr=0x123))
        assert excinfo.value.cause == c.TrapCause.ILLEGAL_INSTRUCTION
        assert excinfo.value.tval != 0

    def test_write_to_read_only_raises(self, vctx):
        with pytest.raises(VirtualTrapError):
            emulate(vctx, Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_MHARTID))


class TestVirtualMret:
    def test_mret_to_supervisor(self, vctx):
        vctx.mstatus = (vctx.mstatus & ~c.MSTATUS_MPP) | (1 << 11) | c.MSTATUS_MPIE
        vctx.mepc = 0x8400_0000
        result, _ = emulate(vctx, Instruction("mret"))
        assert result.world_switch
        assert result.new_virtual_mode == c.S_MODE
        assert result.next_pc == 0x8400_0000
        assert vctx.mstatus & c.MSTATUS_MIE  # MPIE -> MIE
        assert (vctx.mstatus >> 11) & 3 == 0  # MPP cleared to U

    def test_mret_staying_in_m(self, vctx):
        vctx.mepc = 0x8000_1000  # MPP is M at reset
        result, _ = emulate(vctx, Instruction("mret"))
        assert not result.world_switch
        assert result.next_pc == 0x8000_1000

    def test_mret_clears_mprv_leaving_m(self, vctx):
        vctx.mstatus = (vctx.mstatus & ~c.MSTATUS_MPP) | c.MSTATUS_MPRV
        virtual_mret(vctx)
        assert not vctx.mstatus & c.MSTATUS_MPRV

    def test_sret(self, vctx):
        vctx.mstatus |= c.MSTATUS_SPP | c.MSTATUS_SPIE
        vctx.sepc = 0x8400_2000
        result, _ = emulate(vctx, Instruction("sret"))
        assert result.new_virtual_mode == c.S_MODE
        assert result.next_pc == 0x8400_2000
        assert vctx.mstatus & c.MSTATUS_SIE


class TestOtherInstructions:
    def test_wfi(self, vctx):
        result, _ = emulate(vctx, Instruction("wfi"))
        assert result.is_wfi
        assert result.next_pc == 0x8000_0004

    def test_fences(self, vctx):
        for mnemonic in ("sfence.vma", "fence.i"):
            result, _ = emulate(vctx, Instruction(mnemonic))
            assert result.is_fence

    def test_ecall_raises_virtual_trap(self, vctx):
        with pytest.raises(VirtualTrapError) as excinfo:
            emulate(vctx, Instruction("ecall"))
        assert excinfo.value.cause == c.TrapCause.ECALL_FROM_M

    def test_pc_wraps_at_64_bits(self, vctx):
        result, _ = emulate(
            vctx, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_MSCRATCH),
            pc=U64 - 3,
        )
        assert result.next_pc == 0


class TestInjection:
    def test_inject_exception(self, vctx):
        vctx.mtvec = 0x8000_0100
        vctx.mstatus |= c.MSTATUS_MIE
        vctx.virtual_mode = c.S_MODE
        target = inject_virtual_trap(
            vctx, c.TrapCause.ECALL_FROM_S, False, 0, 0x8400_1234
        )
        assert target == 0x8000_0100
        assert vctx.mepc == 0x8400_1234
        assert vctx.mcause == c.TrapCause.ECALL_FROM_S
        assert vctx.virtual_mode == c.M_MODE
        assert (vctx.mstatus >> 11) & 3 == 1  # MPP = S
        assert vctx.mstatus & c.MSTATUS_MPIE
        assert not vctx.mstatus & c.MSTATUS_MIE

    def test_inject_interrupt_vectored(self, vctx):
        vctx.mtvec = 0x8000_0101  # vectored mode
        target = inject_virtual_trap(vctx, c.IRQ_MTI, True, 0, 0x8400_0000)
        assert target == 0x8000_0100 + 4 * c.IRQ_MTI
        assert vctx.mcause == c.INTERRUPT_BIT | c.IRQ_MTI

    def test_inject_exception_ignores_vectoring(self, vctx):
        vctx.mtvec = 0x8000_0101
        target = inject_virtual_trap(
            vctx, c.TrapCause.ILLEGAL_INSTRUCTION, False, 0xBEEF, 0x8400_0000
        )
        assert target == 0x8000_0100
        assert vctx.mtval == 0xBEEF

    def test_inject_then_mret_roundtrip(self, vctx):
        vctx.mtvec = 0x8000_0100
        vctx.mstatus |= c.MSTATUS_MIE
        vctx.virtual_mode = c.S_MODE
        inject_virtual_trap(vctx, c.TrapCause.ECALL_FROM_S, False, 0, 0x8400_1234)
        mode = virtual_mret(vctx)
        assert mode == c.S_MODE
        assert vctx.mepc == 0x8400_1234
        assert vctx.mstatus & c.MSTATUS_MIE
