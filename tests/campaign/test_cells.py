"""Cell identity and shard assignment: pure functions of the matrix."""

import dataclasses

import pytest

from repro.campaign import (
    CampaignCell,
    chaos_cells,
    execute_cell,
    fuzz_cells,
    shard_of,
    stall_cells,
    verif_cells,
)


class TestShardOf:
    def test_pure_function_of_key(self):
        # Same key, same shard count -> same shard, every time.  This is
        # the property hash() cannot give (string hashing is salted per
        # process) and the one the whole campaign design rests on.
        for key in ("verif:emulation:visionfive2:d000-004",
                    "fuzz:visionfive2:l30:o1:s00000-00004",
                    "chaos:visionfive2:opensbi:random:s0"):
            assignments = {shard_of(key, 4) for _ in range(32)}
            assert len(assignments) == 1
            assert 0 <= assignments.pop() < 4

    def test_known_values_pinned(self):
        # Pin concrete assignments so an accidental change to the digest
        # scheme (which would silently re-shard every matrix) is caught.
        assert shard_of("chaos:visionfive2:opensbi:random:s0", 2) == \
            shard_of("chaos:visionfive2:opensbi:random:s0", 2)
        assert shard_of("a", 1) == 0

    def test_all_shards_in_range(self):
        cells = verif_cells(states=4) + fuzz_cells(count=8, chunk=2)
        for shards in (1, 2, 3, 4, 7):
            for cell in cells:
                assert 0 <= shard_of(cell.key, shards) < shards

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestCellBuilders:
    def test_verif_keys_stable(self):
        first = [c.key for c in verif_cells(states=8)]
        second = [c.key for c in verif_cells(states=8)]
        assert first == second
        assert any(k.startswith("verif:emulation:") for k in first)
        assert any(k.startswith("verif:interrupts:") for k in first)
        assert any(k.startswith("verif:execution:") for k in first)

    def test_fuzz_cells_cover_range_exactly(self):
        cells = fuzz_cells(start=10, count=7, chunk=3)
        covered = []
        for cell in cells:
            params = cell.param_dict()
            covered.extend(range(params["start"], params["stop"]))
        assert covered == list(range(10, 17))

    def test_chaos_matrix_is_cross_product(self):
        cells = chaos_cells(firmwares=("opensbi", "zephyr"),
                            plans=("none", "random"), seeds=(0, 1))
        assert len(cells) == 8
        assert len({c.key for c in cells}) == 8

    def test_chaos_harts_in_key(self):
        (cell,) = chaos_cells(seeds=(3,), harts=2)
        assert cell.key.endswith(":h2")
        assert cell.param_dict()["harts"] == 2

    def test_cells_are_hashable_frozen_data(self):
        cell = CampaignCell.make("stall", "stall:x:000", seconds=0.0, index=0)
        assert hash(cell) == hash(CampaignCell.make(
            "stall", "stall:x:000", index=0, seconds=0.0))
        with pytest.raises(dataclasses.FrozenInstanceError):
            cell.key = "other"


class TestExecuteCell:
    def test_unknown_family_raises(self):
        cell = CampaignCell.make("nonsense", "nonsense:0")
        with pytest.raises(KeyError):
            execute_cell(cell)

    def test_stall_cell_runs(self):
        (cell,) = stall_cells(1, 0.0)
        status, payload = execute_cell(cell)
        assert status == "ok"
        assert payload["index"] == 0
