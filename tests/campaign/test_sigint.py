"""Red-first tests for graceful ^C handling (triage satellite S2).

Previously a SIGINT during ``repro campaign`` tore down the pool with a
raw ``KeyboardInterrupt`` traceback and wrote nothing.  Now the runner
drains in-flight cells, marks the rest ``skipped``, the aggregate still
gets written, and the process exits 3.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign import (
    CampaignCell,
    exit_code,
    merge_campaign,
    register_family,
    run_campaign,
)


def _slow_family(params):
    time.sleep(params.get("delay", 0.2))
    return "ok", {"i": params["i"]}


def _fire_sigint(after):
    timer = threading.Timer(after,
                            lambda: os.kill(os.getpid(), signal.SIGINT))
    timer.daemon = True
    timer.start()
    return timer


class TestInProcessDrain:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigint_drains_and_skips(self, workers):
        register_family("sigint-slow", _slow_family)
        cells = [CampaignCell.make("sigint-slow", f"slow:{index:03d}",
                                   i=index, delay=0.2)
                 for index in range(10)]
        timer = _fire_sigint(0.5)
        try:
            campaign = run_campaign(cells, workers=workers,
                                    handle_sigint=True)
        finally:
            timer.cancel()
        assert campaign.interrupted
        statuses = [result.status for result in campaign.results]
        assert statuses.count("ok") >= 1  # in-flight cells drained
        skipped = [result for result in campaign.results
                   if result.status == "skipped"]
        assert skipped  # the tail never ran
        assert all("SIGINT" in result.error for result in skipped)
        # All cells are accounted for, none lost mid-drain.
        assert len(campaign.results) == len(cells)

        aggregate = merge_campaign(campaign)
        assert aggregate["timing"]["interrupted"] is True
        assert exit_code(aggregate) == 3

    def test_handler_restored_after_run(self):
        register_family("sigint-slow", _slow_family)
        cells = [CampaignCell.make("sigint-slow", "slow:000", i=0,
                                   delay=0.01)]
        before = signal.getsignal(signal.SIGINT)
        run_campaign(cells, workers=1, handle_sigint=True)
        assert signal.getsignal(signal.SIGINT) is before

    def test_uninterrupted_run_exits_zero(self):
        register_family("sigint-slow", _slow_family)
        cells = [CampaignCell.make("sigint-slow", "slow:000", i=0,
                                   delay=0.01)]
        campaign = run_campaign(cells, workers=1, handle_sigint=True)
        assert not campaign.interrupted
        assert exit_code(merge_campaign(campaign)) == 0


class TestCliSigint:
    def test_cli_writes_partial_aggregate_and_exits_3(self, tmp_path):
        out = tmp_path / "aggregate.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        # ~800 cells at ~20ms each: comfortably mid-flight when the
        # interrupt lands 2 seconds in.
        seeds = ",".join(str(seed) for seed in range(800))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign",
             "--families", "chaos",
             "--chaos-firmwares", "opensbi",
             "--chaos-plans", "csr-chaos",
             "--chaos-seeds", seeds,
             "--workers", "2",
             "--json", str(out)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            start_new_session=True,
        )
        time.sleep(2.0)
        os.killpg(proc.pid, signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 3, (stdout, stderr)
        assert out.exists(), "partial aggregate must still be written"

        aggregate = json.loads(out.read_text())
        assert aggregate["timing"]["interrupted"] is True
        skipped = [cell for cell in aggregate["cells"]
                   if cell["status"] == "skipped"]
        assert skipped, "interrupt arrived before the matrix finished"
        assert b"Traceback" not in stderr
