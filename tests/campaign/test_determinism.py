"""ISSUE 6 satellite 4: byte-identical aggregates at any worker count.

The same (families, seeds, shards) matrix run at 1, 2, and 4 workers
must yield byte-identical aggregate reports.  The canonical aggregate
excludes only the ``"timing"`` key (wall clock, attempts, worker ids);
everything else — merged verification reports, fuzz findings, chaos
summaries, per-cell statuses — must match to the byte.
"""

import json

import pytest

from repro.campaign import (
    canonical_aggregate,
    canonical_json,
    chaos_cells,
    fuzz_cells,
    merge_campaign,
    merged_check_reports,
    run_campaign,
    verif_cells,
)


def _mini_matrix():
    """A small but three-family matrix: every merge path is exercised."""
    return (
        verif_cells(states=2)
        + fuzz_cells(start=50, count=4, chunk=2, length=20)
        + chaos_cells(firmwares=("zephyr",), plans=("none", "flaky-uart"),
                      seeds=(3,))
    )


@pytest.fixture(scope="module")
def aggregates():
    cells = _mini_matrix()
    return {
        workers: merge_campaign(run_campaign(cells, workers=workers,
                                             timeout=60.0))
        for workers in (1, 2, 4)
    }


class TestByteIdenticalAggregates:
    def test_canonical_json_identical_across_worker_counts(self, aggregates):
        serial = canonical_json(aggregates[1])
        assert canonical_json(aggregates[2]) == serial
        assert canonical_json(aggregates[4]) == serial

    def test_timing_is_the_only_noncanonical_key(self, aggregates):
        for aggregate in aggregates.values():
            canonical = canonical_aggregate(aggregate)
            assert "timing" not in canonical
            assert set(aggregate) - set(canonical) == {"timing"}

    def test_aggregate_is_json_round_trippable(self, aggregates):
        text = canonical_json(aggregates[2])
        assert json.loads(text) == canonical_aggregate(aggregates[2])

    def test_mini_matrix_is_clean(self, aggregates):
        counts = aggregates[1]["counts"]
        assert counts["total"] == counts["ok"], aggregates[1]["failures"]

    def test_merged_verif_totals_match_whole_space(self, aggregates):
        # Sharded chunks must add up to the un-sharded sweep sizes:
        # 64 mip selectors x 40 interrupt cases for virtual-interrupt,
        # and the full pmp_config_space for faithful-execution.
        reports = {r["task"]: r for r in aggregates[1]["verif"]["reports"]}
        assert reports["virtual-interrupt"]["inputs_checked"] == 64 * 40
        assert reports["faithful-execution"]["inputs_checked"] > 0
        assert reports["faithful-emulation"]["inputs_checked"] > 0

    def test_fuzz_seeds_fully_accounted(self, aggregates):
        fuzz = aggregates[4]["fuzz"]
        assert fuzz["seeds_run"] == list(range(50, 54))
        assert fuzz["seeds_skipped"] == []
        assert fuzz["deadline_hit"] is False

    def test_chaos_results_sorted_by_key(self, aggregates):
        keys = [entry["key"] for entry in aggregates[2]["chaos"]["results"]]
        assert keys == sorted(keys)


class TestMergedCheckReports:
    def test_order_matches_verify_output(self, aggregates):
        tasks = [r["task"] for r in aggregates[1]["verif"]["reports"]]
        assert tasks == ["faithful-emulation", "virtual-interrupt",
                         "faithful-execution"]

    def test_merged_reports_from_results(self):
        cells = verif_cells(states=2, subspaces=("interrupts",))
        campaign = run_campaign(cells, workers=2)
        (report,) = merged_check_reports(campaign.results)
        assert report.task == "virtual-interrupt"
        assert report.passed
        assert report.inputs_checked == 64 * 40
