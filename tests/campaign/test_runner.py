"""Worker-pool behaviour: containment, timeout/retry, budget, no hangs.

ISSUE 6 satellite 4: "a worker that raises or times out surfaces as a
structured cell failure, never a traceback or a hang."  Every test here
drives the real multiprocessing pool with synthetic cell families.
"""

import pytest

from repro.campaign import (
    CampaignCell,
    register_family,
    run_campaign,
    stall_cells,
)


def _raising_runner(params):
    raise RuntimeError(f"deliberate cell failure {params['index']}")


def _ok_runner(params):
    return "ok", {"index": params["index"]}


@pytest.fixture(autouse=True)
def _synthetic_families():
    # fork workers inherit the registry, so registering here is enough.
    register_family("boom", _raising_runner)
    register_family("fine", _ok_runner)
    yield


def _cells(family, count):
    return [CampaignCell.make(family, f"{family}:{index:03d}", index=index)
            for index in range(count)]


class TestContainment:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_raising_cell_is_structured_error(self, workers):
        campaign = run_campaign(_cells("boom", 1) + _cells("fine", 3),
                                workers=workers, timeout=30.0)
        by_key = {r.key: r for r in campaign.results}
        boom = by_key["boom:000"]
        assert boom.status == "error"
        assert "RuntimeError: deliberate cell failure 0" in boom.error
        # The failure is contained: every other cell still ran.
        for index in range(3):
            assert by_key[f"fine:{index:03d}"].status == "ok"
        assert campaign.counts() == {
            "ok": 3, "fail": 0, "error": 1, "timeout": 0, "skipped": 0,
            "total": 4,
        }

    def test_every_cell_gets_exactly_one_result(self):
        cells = _cells("fine", 9) + _cells("boom", 3)
        campaign = run_campaign(cells, workers=3, timeout=30.0)
        assert sorted(r.key for r in campaign.results) == \
            sorted(c.key for c in cells)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(_cells("fine", 2) + _cells("fine", 2))


class TestTimeoutAndRetry:
    def test_hung_cell_times_out_with_one_retry(self):
        # One cell sleeps far beyond the per-cell timeout: the pool must
        # kill it, retry once in a fresh process, then report a
        # structured "timeout" — all while the rest of the shard runs.
        hung = stall_cells(1, 30.0, label="hang")
        quick = _cells("fine", 3)
        campaign = run_campaign(hung + quick, workers=2, timeout=0.5,
                                retries=1)
        by_key = {r.key: r for r in campaign.results}
        result = by_key["stall:hang:000"]
        assert result.status == "timeout"
        assert result.attempts == 2  # initial run + exactly one retry
        assert "timeout" in result.error
        for index in range(3):
            assert by_key[f"fine:{index:03d}"].status == "ok"

    def test_pool_never_hangs_on_timeout(self):
        # Wall time bounds: ~timeout * (retries + 1) + slack, never the
        # 30 s the hung cell would take.
        campaign = run_campaign(stall_cells(1, 30.0, label="wall"),
                                workers=2, timeout=0.4, retries=1)
        assert campaign.wall_seconds < 10.0
        assert campaign.results[0].status == "timeout"


class TestBudget:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_budget_marks_unfinished_cells_skipped(self, workers):
        cells = stall_cells(6, 0.3, label="budget")
        campaign = run_campaign(cells, workers=workers, timeout=30.0,
                                budget_seconds=0.45)
        counts = campaign.counts()
        assert counts["skipped"] >= 1  # budget cut the campaign short
        assert counts["total"] == 6  # ...but every cell is accounted for
        for result in campaign.results:
            if result.status == "skipped":
                assert "budget" in result.error
