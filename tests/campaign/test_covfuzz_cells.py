"""The covfuzz campaign family: sharded guided fuzzing, exact merges.

Coverage union is commutative and associative, so the aggregate's
coverage document — digest included — must be byte-identical at any
worker count, and every kept entry in the aggregate must be a valid
corpus entry a single-process fold-back can absorb.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    canonical_json,
    covfuzz_cells,
    merge_campaign,
    run_campaign,
)
from repro.coverage import Corpus, CoverageMap


def _matrix():
    return covfuzz_cells(cells=3, cases=4, length=4, seed=0)


@pytest.fixture(scope="module")
def aggregates():
    cells = _matrix()
    return {
        workers: merge_campaign(run_campaign(cells, workers=workers,
                                             timeout=120.0))
        for workers in (1, 2, 4)
    }


class TestByteIdenticalAcrossWorkers:
    def test_canonical_json_identical(self, aggregates):
        serial = canonical_json(aggregates[1])
        assert canonical_json(aggregates[2]) == serial
        assert canonical_json(aggregates[4]) == serial

    def test_coverage_digest_present_and_stable(self, aggregates):
        digests = {a["covfuzz"]["coverage_digest"]
                   for a in aggregates.values()}
        assert len(digests) == 1


class TestAggregateShape:
    def test_union_matches_per_cell_documents(self, aggregates):
        aggregate = aggregates[1]
        union = CoverageMap.from_doc(aggregate["covfuzz"]["coverage"])
        assert union.digest() == aggregate["covfuzz"]["coverage_digest"]
        assert aggregate["covfuzz"]["report"]["paths"] == union.path_count()
        # Three independent cells each ran 4 cases.
        assert aggregate["covfuzz"]["executed"] == 12

    def test_kept_entries_fold_into_a_corpus(self, aggregates, tmp_path):
        aggregate = aggregates[2]
        kept = aggregate["covfuzz"]["kept"]
        assert kept  # guided runs over an empty map always keep something
        assert [item["digest"] for item in kept] == sorted(
            item["digest"] for item in kept
        )
        corpus = Corpus(str(tmp_path / "corpus"))
        for item in kept:
            assert corpus.add_entry(item["entry"]) == item["digest"]
        assert len(corpus) == len(kept)

    def test_cells_carry_distinct_seeds(self):
        keys = [cell.key for cell in _matrix()]
        assert len(set(keys)) == 3
        assert all(":s0000" in key for key in keys)

    def test_no_findings_without_seeded_bugs(self, aggregates):
        for aggregate in aggregates.values():
            assert aggregate["covfuzz"]["findings"] == []
            assert aggregate["counts"]["fail"] == 0
