"""Red-first regression tests for the three accounting fixes (ISSUE 6).

Each test here fails on the pre-fix code:

* S1 — ``run_fuzz_campaign`` did not exist and ``fuzz_campaign`` had no
  campaign-level deadline: an expired budget silently truncated the seed
  list and reported success.
* S2 — ``ChaosResult.trap_log`` grew unboundedly (one tuple per trap for
  the whole boot) and there was no ``trap_log_total``.
* S3 — ``merge_reports`` did not exist: sharded ``CheckReport``\\ s could
  not be combined, and divergence order depended on arrival order.
"""

import time

import pytest

from repro.core import bugs
from repro.spec.platform import VISIONFIVE2
from repro.verif import run_fuzz_campaign
from repro.verif.fuzz import FuzzCampaignResult, fuzz_campaign
from repro.verif.report import CheckReport, Divergence, merge_reports


class TestFuzzCampaignDeadline:
    """S1: the campaign-level deadline aborts cleanly and reports
    un-run seeds as skipped instead of silently dropping them."""

    def test_expired_budget_reports_skipped_seeds(self):
        result = run_fuzz_campaign(range(50, 58), length=20,
                                   campaign_seconds=0.0)
        assert isinstance(result, FuzzCampaignResult)
        assert result.deadline_hit
        assert result.seeds_run == []
        assert result.seeds_skipped == list(range(50, 58))
        assert not result.complete

    def test_partial_budget_accounts_for_every_seed(self):
        # Enough budget for some seeds but not all: run + skipped must
        # partition the input exactly, in order, with nothing dropped.
        start = time.monotonic()
        probe = run_fuzz_campaign(range(50, 51), length=20)
        per_seed = max(time.monotonic() - start, probe.elapsed_seconds)
        result = run_fuzz_campaign(range(50, 58), length=20,
                                   campaign_seconds=per_seed * 2.5)
        assert result.seeds_run + result.seeds_skipped == list(range(50, 58))
        if result.seeds_skipped:
            assert result.deadline_hit

    def test_no_budget_runs_everything(self):
        result = run_fuzz_campaign(range(50, 54), length=20)
        assert result.complete and result.clean
        assert result.seeds_run == list(range(50, 54))
        assert not result.deadline_hit

    def test_compat_shim_returns_findings_list(self):
        # The historical entry point still returns a bare findings list.
        assert fuzz_campaign(range(50, 53), length=20) == []


class TestTrapLogCap:
    """S2: the chaos trap log is a bounded flight recorder — last K
    events plus a total count — not an unbounded transcript."""

    def test_trap_log_is_capped(self):
        from repro.faults.chaos import TRAP_LOG_LIMIT, run_chaos

        # opensbi under plan=random seed=1 traps a few hundred times —
        # comfortably past the cap, cheap to run.
        result = run_chaos("opensbi", plan="random", seed=1)
        assert result.trap_log_total > TRAP_LOG_LIMIT
        assert len(result.trap_log) == TRAP_LOG_LIMIT

    def test_total_counts_every_event(self):
        from repro.faults.chaos import TRAP_LOG_LIMIT, run_chaos

        # A short boot stays under the cap: the log holds everything
        # and the total equals its length.
        result = run_chaos("zephyr", plan="none", seed=0)
        assert result.trap_log_total == len(result.trap_log)
        assert len(result.trap_log) <= TRAP_LOG_LIMIT

    def test_recorder_keeps_the_tail(self, monkeypatch):
        # Flight-recorder semantics: what survives is the *last* K
        # events (the interesting ones when diagnosing a late failure),
        # identical to the tail of an uncapped replay of the same seed.
        import repro.faults.chaos as chaos_mod

        limit = chaos_mod.TRAP_LOG_LIMIT
        capped = chaos_mod.run_chaos("opensbi", plan="random", seed=1)
        monkeypatch.setattr(chaos_mod, "TRAP_LOG_LIMIT", 10**9)
        full = chaos_mod.run_chaos("opensbi", plan="random", seed=1)
        assert len(full.trap_log) == full.trap_log_total
        assert capped.trap_log == full.trap_log[-limit:]


def _report(task, divergences, inputs=10, elapsed=1.0):
    report = CheckReport(task=task, inputs_checked=inputs,
                         elapsed_seconds=elapsed)
    report.divergences = list(divergences)
    return report


def _div(check, context, field="pc"):
    return Divergence(check=check, context=context, field=field,
                      expected=1, actual=2)


class TestMergeReports:
    """S3: shard merging sums counters and orders divergences by input
    key, independent of shard arrival order."""

    def test_counters_sum_across_shards(self):
        merged = merge_reports([
            _report("faithful-emulation", [], inputs=100, elapsed=1.5),
            _report("faithful-emulation", [], inputs=40, elapsed=0.5),
            _report("virtual-interrupt", [], inputs=7, elapsed=0.25),
        ])
        by_task = {r.task: r for r in merged}
        assert by_task["faithful-emulation"].inputs_checked == 140
        assert by_task["faithful-emulation"].elapsed_seconds == 2.0
        assert by_task["virtual-interrupt"].inputs_checked == 7

    def test_divergence_order_is_arrival_independent(self):
        divs = [_div("emul", f"input-{index:02d}") for index in range(6)]
        forward = merge_reports([
            _report("t", divs[:3]), _report("t", divs[3:]),
        ])[0]
        backward = merge_reports([
            _report("t", reversed(divs[3:])), _report("t", reversed(divs[:3])),
        ])[0]
        assert forward.divergences == backward.divergences
        assert [d.context for d in forward.divergences] == \
            [f"input-{index:02d}" for index in range(6)]

    def test_merge_handles_unhashable_values(self):
        # Divergence expected/actual may be lists (e.g. PMP register
        # dumps); ordering must not blow up on them.
        odd = Divergence(check="emul", context="c", field="pmpcfg",
                         expected=[1, 2], actual=[3, 4])
        merged = merge_reports([_report("t", [odd]), _report("t", [])])
        assert merged[0].divergences == [odd]

    def test_empty_merge(self):
        assert merge_reports([]) == []


class TestVerifyExitsNonzeroOnMergedDivergences:
    """S3 end-to-end: a divergence found in any shard must fail the
    whole ``repro verify`` run, even when shards are merged across
    worker processes."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_seeded_bug_fails_verify(self, workers, capsys):
        from repro.cli import main

        # fork workers inherit the seeded-bug set, so the divergence is
        # produced inside a worker process and must survive the merge.
        with bugs.seeded("mret_mpp_not_cleared"):
            code = main(["verify", "--states", "2",
                         "--workers", str(workers)])
        assert code != 0
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_clean_verify_passes(self, capsys):
        from repro.cli import main

        assert main(["verify", "--states", "2", "--workers", "2"]) == 0
        assert "PASS" in capsys.readouterr().out


# Module self-check: these imports are the red-first tripwire — on the
# pre-fix tree, FuzzCampaignResult / merge_reports / TRAP_LOG_LIMIT do
# not exist and this whole module fails at collection time.
assert VISIONFIVE2 is not None
