"""Red-first tests for fault-plan validation (triage satellite S1).

On the pre-fix tree, ``FaultSpec(site="bogus")`` constructed happily and
exploded only when the injector first consulted it mid-chaos-run — a
raw ``KeyError``/no-match surprise halfway through a campaign.  Now:

* unknown site/device/kind names fail at *construction* with a
  ``ValueError`` naming the known sites;
* ``FaultPlan`` rejects non-``FaultSpec`` entries at construction;
* any residual plan-constructor error inside :func:`run_chaos` becomes
  a structured ``error`` :class:`ChaosResult` — "never raises" covers
  plan resolution too.
"""

import pytest

from repro.faults.chaos import run_chaos
from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    MMIO_DEVICES,
    SITES,
)
from repro.faults.plans import resolve_plan


class TestFaultSpecValidation:
    def test_unknown_site_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault site 'bogus'"):
            FaultSpec(site="bogus")

    def test_error_names_known_sites(self):
        with pytest.raises(ValueError) as excinfo:
            FaultSpec(site="vscr-write")  # a plausible typo
        for site in SITES:
            assert site in str(excinfo.value)

    def test_unknown_mmio_device_rejected(self):
        with pytest.raises(ValueError, match="unknown mmio device"):
            FaultSpec(site="mmio", device="nvme")
        for device in MMIO_DEVICES:
            FaultSpec(site="mmio", device=device)  # all legal

    def test_unknown_mmio_kind_rejected(self):
        with pytest.raises(ValueError, match="access kind"):
            FaultSpec(site="mmio", kind="execute")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="mmio", probability=1.5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"site": "mmio", "devise": "uart"})

    def test_dict_round_trip(self):
        spec = FaultSpec(site="vcsr-write", csr=0x305, limit=1,
                         xor_mask=0x7F00_0000_0000)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_elides_defaults(self):
        assert FaultSpec(site="stall").to_dict() == {"site": "stall"}


class TestFaultPlanValidation:
    def test_non_spec_entries_rejected(self):
        with pytest.raises(ValueError, match="spec #0 is not a FaultSpec"):
            FaultPlan("x", ({"site": "bogus"},))

    def test_plan_dict_round_trip(self):
        plan = FaultPlan("p", (FaultSpec(site="mmio", device="uart"),
                               FaultSpec(site="stall", after=10)))
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan

    def test_resolve_plan_accepts_dict_and_json(self):
        import json

        plan = FaultPlan("p", (FaultSpec(site="decode", limit=2),))
        doc = plan.to_dict()
        assert resolve_plan(doc) == plan
        assert resolve_plan(json.dumps(doc)) == plan

    def test_resolve_plan_bad_document_raises_value_error(self):
        with pytest.raises(ValueError):
            resolve_plan({"name": "p", "specs": [{"site": "bogus"}]})


class TestChaosNeverRaisesOnBadPlans:
    """The chaos harness converts residual plan-constructor errors into
    structured ``error`` results instead of leaking mid-campaign."""

    def test_unknown_plan_name_is_structured_error(self):
        result = run_chaos("opensbi", plan="no-such-plan", seed=0)
        assert not result.ok
        assert result.error is not None
        assert "no-such-plan" in result.error

    def test_bad_plan_document_is_structured_error(self):
        result = run_chaos(
            "opensbi",
            plan={"name": "evil", "specs": [{"site": "bogus"}]},
            seed=0,
        )
        assert not result.ok
        assert result.error is not None
        assert "bogus" in result.error

    def test_bad_plan_json_is_structured_error(self):
        result = run_chaos(
            "opensbi",
            plan='{"name": "x", "specs": [{"site": "zzz"}]}',
            seed=0,
        )
        assert not result.ok and result.error is not None

    def test_unknown_firmware_still_raises(self):
        # Caller bug, not plan data: stays a hard error (pinned by the
        # chaos suite as well).
        with pytest.raises(ValueError, match="unknown firmware"):
            run_chaos("seabios", plan="none")

    def test_direct_injector_construction_still_raises(self):
        # Only the harness converts; library users keep the exception.
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan("x", (FaultSpec(site="mmio",
                                                    device="floppy"),)),
                          seed=0)
