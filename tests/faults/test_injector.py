"""Unit tests for the deterministic fault injector and the canned plans."""

import pytest

from repro.faults import (
    CHAOS_SUITE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PLANS,
    random_plan,
    resolve_plan,
)
from repro.isa import constants as c
from repro.spec.step import BusError


def _drive(injector: FaultInjector, rounds: int = 200) -> list:
    """A fixed decision sequence touching every site; returns injections."""
    for i in range(rounds):
        injector.corrupt_vcsr_write(0, c.CSR_MTVEC if i % 3 else c.CSR_MIE, i)
        injector.mmio_error("uart" if i % 2 else "clint",
                            "write" if i % 4 else "read", i % 32)
        injector.flip_instruction(0, "csrrw")
        injector.stall_firmware(0)
    return list(injector.injections)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("teleport")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("mmio", probability=1.5)

    def test_matches_filters(self):
        spec = FaultSpec("mmio", device="uart", kind="write")
        assert spec.matches(device="uart", kind="write", csr=None, hart=0)
        assert not spec.matches(device="clint", kind="write")
        assert not spec.matches(device="uart", kind="read")


class TestDeterminism:
    @pytest.mark.parametrize("plan_name", list(CHAOS_SUITE))
    def test_same_seed_same_injections(self, plan_name):
        plan = resolve_plan(plan_name)
        a = _drive(FaultInjector(plan, seed=42))
        b = _drive(FaultInjector(plan, seed=42))
        assert a == b

    def test_different_seed_may_differ_but_is_self_consistent(self):
        plan = resolve_plan("transient-mmio")
        for seed in (1, 2, 3):
            assert (_drive(FaultInjector(plan, seed=seed))
                    == _drive(FaultInjector(plan, seed=seed)))

    def test_random_plan_is_deterministic(self):
        assert random_plan(7) == random_plan(7)
        assert random_plan(7).name == "random-7"


class TestSchedules:
    def test_after_skips_early_decisions(self):
        plan = FaultPlan("t", (FaultSpec("stall", after=5),))
        injector = FaultInjector(plan)
        fired = [injector.stall_firmware(0) for _ in range(8)]
        assert fired == [False] * 5 + [True] * 3

    def test_limit_caps_injections(self):
        plan = FaultPlan("t", (FaultSpec("decode", limit=2),))
        injector = FaultInjector(plan)
        fired = [injector.flip_instruction(0, "mret") for _ in range(6)]
        assert fired.count(True) == 2 and fired[:2] == [True, True]

    def test_csr_filter(self):
        plan = FaultPlan(
            "t", (FaultSpec("vcsr-write", csr=c.CSR_MTVEC, xor_mask=0xFF),)
        )
        injector = FaultInjector(plan)
        assert injector.corrupt_vcsr_write(0, c.CSR_MIE, 0x10) == 0x10
        assert injector.corrupt_vcsr_write(0, c.CSR_MTVEC, 0x10) == 0x10 ^ 0xFF

    def test_hart_filter(self):
        plan = FaultPlan("t", (FaultSpec("stall", hart=1),))
        injector = FaultInjector(plan)
        assert not injector.stall_firmware(0)
        assert injector.stall_firmware(1)

    def test_corruption_without_mask_flips_one_bit(self):
        plan = FaultPlan("t", (FaultSpec("vcsr-write"),))
        injector = FaultInjector(plan)
        value = injector.corrupt_vcsr_write(0, c.CSR_MSTATUS, 0)
        assert value != 0 and bin(value).count("1") == 1

    def test_injection_events_record_site_and_detail(self):
        plan = FaultPlan("t", (FaultSpec("mmio", device="uart"),))
        injector = FaultInjector(plan)
        assert injector.mmio_error("uart", "write", 0x0)
        (event,) = injector.injections
        assert event.site == "mmio" and "uart:write" in event.detail
        summary = injector.summary()
        assert summary["plan"] == "t" and summary["injections"]


class TestPlans:
    def test_suite_has_at_least_five_plans(self):
        assert len(CHAOS_SUITE) >= 5
        assert all(name in PLANS for name in CHAOS_SUITE)

    def test_resolve_known_unknown_and_passthrough(self):
        assert resolve_plan("none").name == "none"
        plan = FaultPlan("mine", ())
        assert resolve_plan(plan) is plan
        assert resolve_plan("random", seed=3).name == "random-3"
        with pytest.raises(ValueError, match="unknown fault plan"):
            resolve_plan("no-such-plan")

    def test_control_plan_never_fires(self):
        assert _drive(FaultInjector(resolve_plan("none"), seed=1)) == []


class TestDeviceHooks:
    def test_device_hook_raises_bus_error_through_device(self):
        from repro.hart.machine import Machine
        from repro.spec.platform import VISIONFIVE2

        machine = Machine(VISIONFIVE2)
        plan = FaultPlan("t", (FaultSpec("mmio", device="uart", limit=1),))
        machine.install_fault_injector(FaultInjector(plan))
        with pytest.raises(BusError):
            machine.uart.write(0, 1, 0x41)
        # The limit is exhausted: subsequent accesses succeed.
        machine.uart.write(0, 1, 0x42)
        assert "B" in machine.uart.text()

    def test_uninstall_clears_hooks(self):
        from repro.hart.machine import Machine
        from repro.spec.platform import VISIONFIVE2

        machine = Machine(VISIONFIVE2)
        plan = FaultPlan("t", (FaultSpec("mmio"),))
        machine.install_fault_injector(FaultInjector(plan))
        machine.install_fault_injector(None)
        machine.uart.write(0, 1, 0x41)  # must not raise
        assert machine.clint.fault_hook is None
