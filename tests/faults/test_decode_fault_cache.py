"""Red-first regression: decode-site faults fire even for lru-cached words.

PR-1 wrapped the decoder in an lru cache keyed on the instruction word.
The decode fault-injection site was only consulted on the firmware
emulation path; ``BinaryProgram._fetch`` called the (cached) decoder
directly, so a canned decode fault aimed at a pc whose word had already
been decoded never fired.  The site check must run in the fetch path
*before* the cache lookup.
"""

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hart.binary import BinaryProgram
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa.asm import Assembler
from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2

REGION = Region("firmware", 0x8000_0000, 0x10_0000)


def _loop_image() -> bytes:
    """An M-mode image spinning on a 2-instruction loop.

    Every loop iteration re-fetches the same two pcs, so by the time the
    canned fault decision comes up the words are long since lru-cached.
    The trap vector exits via ebreak, making a delivered decode fault
    observable as a halt.
    """
    asm = Assembler(base=REGION.base)
    asm.li("t0", REGION.base + 0x100)
    asm.csrw(c.CSR_MTVEC, "t0")
    asm.label("loop")
    asm.addi("a0", "a0", 1)
    asm.j("loop")
    while asm.current_address < REGION.base + 0x100:
        asm.nop()
    asm.ebreak()
    return asm.binary()


def test_decode_fault_fires_on_cached_word():
    machine = Machine(VISIONFIVE2)
    program = BinaryProgram("image", REGION, machine, _loop_image())
    machine.register(program)
    plan = FaultPlan(name="decode-once", specs=(
        FaultSpec("decode", after=20, limit=1),
    ))
    injector = FaultInjector(plan, seed=0)
    machine.install_fault_injector(injector)
    machine.boot(entry=REGION.base)
    # Decision 20 lands deep inside the loop: the faulted pc has been
    # fetched (and its word cached) many times already.
    assert [event.site for event in injector.injections] == ["decode"]
    assert injector.injections[0].index == 20
    # The injected illegal-instruction trap reached the image's vector.
    assert program.ebreak_hit
    assert machine.harts[0].state.csr.mcause == c.TrapCause.ILLEGAL_INSTRUCTION


def test_no_decode_fault_without_a_matching_spec():
    machine = Machine(VISIONFIVE2)
    asm = Assembler(base=REGION.base)
    asm.li("a0", 3)
    asm.ebreak()
    program = BinaryProgram("image", REGION, machine, asm.binary())
    machine.register(program)
    injector = FaultInjector(FaultPlan(name="quiet"), seed=0)
    machine.install_fault_injector(injector)
    machine.boot(entry=REGION.base)
    assert program.ebreak_hit
    assert not injector.injections
