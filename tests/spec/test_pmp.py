"""Reference pmpCheck semantics: match modes, priority, partial matches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import constants as c
from repro.isa.bits import napot_encode
from repro.spec.pmp import PmpEntry, entry_permits, pmp_check

R, W, X, L = c.PMP_R, c.PMP_W, c.PMP_X, c.PMP_L
OFF = int(c.PmpAddressMode.OFF) << c.PMP_A_SHIFT
TOR = int(c.PmpAddressMode.TOR) << c.PMP_A_SHIFT
NA4 = int(c.PmpAddressMode.NA4) << c.PMP_A_SHIFT
NAPOT = int(c.PmpAddressMode.NAPOT) << c.PMP_A_SHIFT

READ = c.AccessType.READ
WRITE = c.AccessType.WRITE
EXECUTE = c.AccessType.EXECUTE


def check(cfg, addr, address, size=8, access=READ, mode=c.S_MODE):
    count = len(cfg)
    cfg = cfg + [0] * (8 - len(cfg))
    addr = addr + [0] * (8 - len(addr))
    return pmp_check(cfg, addr, address, size, access, mode, pmp_count=8)


class TestAddressingModes:
    def test_off_never_matches(self):
        result = check([OFF | R | W | X], [(1 << 54) - 1], 0x1000)
        assert result.matched_index is None

    def test_na4_matches_exactly_four_bytes(self):
        cfg, addr = [NA4 | R], [0x1000 >> 2]
        assert check(cfg, addr, 0x1000, size=4).allowed
        assert check(cfg, addr, 0x1004, size=4).matched_index is None

    def test_napot_range(self):
        cfg = [NAPOT | R]
        addr = [napot_encode(0x2000, 0x1000)]
        assert check(cfg, addr, 0x2000).allowed
        assert check(cfg, addr, 0x2FF8).allowed
        assert check(cfg, addr, 0x3000).matched_index is None

    def test_tor_uses_previous_entry(self):
        cfg = [OFF, TOR | R]
        addr = [0x1000 >> 2, 0x2000 >> 2]
        result = check(cfg, addr, 0x1800)
        assert result.allowed and result.matched_index == 1
        assert check(cfg, addr, 0x800).matched_index is None

    def test_tor_entry_zero_starts_at_zero(self):
        cfg = [TOR | R]
        addr = [0x1000 >> 2]
        assert check(cfg, addr, 0x0).allowed
        assert check(cfg, addr, 0xFF8).allowed
        assert check(cfg, addr, 0x1000).matched_index is None

    def test_empty_tor_range_never_matches(self):
        cfg = [OFF, TOR | R]
        addr = [0x2000 >> 2, 0x1000 >> 2]  # end <= start
        assert check(cfg, addr, 0x1800).matched_index is None


class TestPriority:
    def test_lowest_index_wins(self):
        region = napot_encode(0x1000, 0x1000)
        cfg = [NAPOT, NAPOT | R | W | X]  # entry 0 denies, entry 1 allows
        assert not check(cfg, [region, region], 0x1000).allowed

    def test_higher_entry_applies_when_lower_is_off(self):
        region = napot_encode(0x1000, 0x1000)
        cfg = [OFF, NAPOT | R]
        assert check(cfg, [region, region], 0x1000).allowed

    def test_first_match_even_if_denying(self):
        inner = napot_encode(0x1000, 8)
        outer = napot_encode(0x1000, 0x1000)
        cfg = [NAPOT, NAPOT | R | W | X]
        result = check(cfg, [inner, outer], 0x1000)
        assert result.matched_index == 0 and not result.allowed
        # Outside the inner region the outer entry applies.
        assert check(cfg, [inner, outer], 0x1800).allowed


class TestPartialMatches:
    def test_straddling_access_fails(self):
        cfg = [NAPOT | R | W | X]
        addr = [napot_encode(0x1000, 0x1000)]
        result = check(cfg, addr, 0xFFC, size=8)
        assert result.matched_index == 0 and not result.allowed

    def test_partial_match_fails_even_for_m_mode(self):
        cfg = [NAPOT | R]
        addr = [napot_encode(0x1000, 8)]
        result = check(cfg, addr, 0x1004, size=8, mode=c.M_MODE)
        assert not result.allowed


class TestMachineMode:
    def test_m_mode_default_allow(self):
        assert check([OFF], [0], 0x12345, mode=c.M_MODE).allowed

    def test_m_mode_ignores_unlocked_entries(self):
        cfg = [NAPOT]  # no permissions
        addr = [napot_encode(0x1000, 0x1000)]
        assert check(cfg, addr, 0x1000, mode=c.M_MODE).allowed

    def test_m_mode_respects_locked_entries(self):
        cfg = [NAPOT | L]  # locked, no permissions
        addr = [napot_encode(0x1000, 0x1000)]
        assert not check(cfg, addr, 0x1000, mode=c.M_MODE).allowed

    def test_locked_with_permission_allows_m(self):
        cfg = [NAPOT | L | R]
        addr = [napot_encode(0x1000, 0x1000)]
        assert check(cfg, addr, 0x1000, access=READ, mode=c.M_MODE).allowed
        assert not check(cfg, addr, 0x1000, access=WRITE, mode=c.M_MODE).allowed


class TestSupervisorUserDefaults:
    @pytest.mark.parametrize("mode", [c.S_MODE, c.U_MODE])
    def test_no_match_denies(self, mode):
        assert not check([OFF], [0], 0x1000, mode=mode).allowed

    def test_no_pmp_implemented_allows_everything(self):
        result = pmp_check([], [], 0x1000, 8, READ, c.S_MODE, pmp_count=0)
        assert result.allowed


class TestPermissionBits:
    @pytest.mark.parametrize("perm,access,allowed", [
        (R, READ, True), (R, WRITE, False), (R, EXECUTE, False),
        (R | W, WRITE, True), (X, EXECUTE, True), (X, READ, False),
        (R | W | X, WRITE, True),
    ])
    def test_s_mode_permissions(self, perm, access, allowed):
        cfg = [NAPOT | perm]
        addr = [napot_encode(0x1000, 0x1000)]
        assert check(cfg, addr, 0x1000, access=access).allowed is allowed

    def test_entry_permits_helper(self):
        assert entry_permits(R, READ, c.S_MODE)
        assert not entry_permits(R, WRITE, c.S_MODE)
        assert entry_permits(0, READ, c.M_MODE)  # unlocked → M unconstrained
        assert not entry_permits(L, READ, c.M_MODE)


class TestPmpEntry:
    def test_byte_range_off(self):
        assert PmpEntry(OFF, 0x1000).byte_range(0) is None

    def test_byte_range_napot(self):
        entry = PmpEntry(NAPOT, napot_encode(0x4000, 0x2000))
        assert entry.byte_range(0) == (0x4000, 0x6000)

    def test_byte_range_tor(self):
        entry = PmpEntry(TOR, 0x2000 >> 2)
        assert entry.byte_range(0x1000 >> 2) == (0x1000, 0x2000)

    def test_locked_property(self):
        assert PmpEntry(L, 0).locked
        assert not PmpEntry(R, 0).locked


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=0xFF),
        st.integers(min_value=0, max_value=(1 << 54) - 1),
        st.integers(min_value=0, max_value=(1 << 40)),
    )
    def test_m_mode_allowed_unless_locked_match(self, cfg_byte, pmpaddr, address):
        cfg_byte &= c.PMP_CFG_VALID_MASK
        result = pmp_check([cfg_byte] + [0] * 7, [pmpaddr] + [0] * 7,
                           address, 8, READ, c.M_MODE, pmp_count=8)
        if not cfg_byte & L and result.matched_index == 0:
            assert result.allowed or result.matched_index == 0  # partial only
        if result.matched_index is None:
            assert result.allowed

    @given(st.integers(min_value=0, max_value=(1 << 40)))
    def test_deny_all_s_mode_without_entries(self, address):
        result = pmp_check([0] * 8, [0] * 8, address, 8, READ, c.S_MODE,
                           pmp_count=8)
        assert not result.allowed
