"""The reference transition function: ALU, memory, CSR, and system ops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import constants as c
from repro.isa.instructions import Instruction
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.spec.state import MachineState
from repro.spec.step import BusError, execute_instruction

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
MASK = (1 << 64) - 1


class DictBus:
    """Simple byte-addressed memory for spec-level tests."""

    def __init__(self):
        self.data: dict[int, int] = {}

    def read(self, address, size):
        return int.from_bytes(
            bytes(self.data.get(address + i, 0) for i in range(size)), "little"
        )

    def write(self, address, size, value):
        for i, byte in enumerate(value.to_bytes(size, "little")):
            self.data[address + i] = byte


@pytest.fixture
def state():
    machine_state = MachineState(VISIONFIVE2)
    machine_state.pc = 0x8000_0000
    machine_state.csr.mtvec = 0x8020_0000
    return machine_state


def run(state, instr, bus=None):
    if bus is None:
        bus = DictBus()
    return execute_instruction(state, instr, bus)


class TestAlu:
    def test_addi(self, state):
        state.set_xreg(1, 40)
        run(state, Instruction("addi", rd=2, rs1=1, imm=2))
        assert state.get_xreg(2) == 42
        assert state.pc == 0x8000_0004

    def test_addi_wraps(self, state):
        state.set_xreg(1, MASK)
        run(state, Instruction("addi", rd=2, rs1=1, imm=1))
        assert state.get_xreg(2) == 0

    def test_x0_always_zero(self, state):
        state.set_xreg(1, 99)
        run(state, Instruction("addi", rd=0, rs1=1, imm=0))
        assert state.get_xreg(0) == 0

    def test_sub(self, state):
        state.set_xreg(1, 5)
        state.set_xreg(2, 7)
        run(state, Instruction("sub", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == MASK - 1  # -2

    def test_slt_signed(self, state):
        state.set_xreg(1, MASK)  # -1
        state.set_xreg(2, 1)
        run(state, Instruction("slt", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 1

    def test_sltu_unsigned(self, state):
        state.set_xreg(1, MASK)
        state.set_xreg(2, 1)
        run(state, Instruction("sltu", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 0

    def test_sra_arithmetic(self, state):
        state.set_xreg(1, 1 << 63)
        state.set_xreg(2, 63)
        run(state, Instruction("sra", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == MASK  # -1

    def test_srl_logical(self, state):
        state.set_xreg(1, 1 << 63)
        state.set_xreg(2, 63)
        run(state, Instruction("srl", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 1

    def test_addiw_sign_extends(self, state):
        state.set_xreg(1, 0x7FFF_FFFF)
        run(state, Instruction("addiw", rd=2, rs1=1, imm=1))
        assert state.get_xreg(2) == 0xFFFF_FFFF_8000_0000

    def test_addw_truncates(self, state):
        state.set_xreg(1, 0x1_0000_0001)
        state.set_xreg(2, 1)
        run(state, Instruction("addw", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 2

    def test_lui(self, state):
        run(state, Instruction("lui", rd=1, imm=0x80000))
        assert state.get_xreg(1) == 0xFFFF_FFFF_8000_0000

    def test_auipc(self, state):
        run(state, Instruction("auipc", rd=1, imm=1))
        assert state.get_xreg(1) == 0x8000_1000


class TestMulDiv:
    def test_mul(self, state):
        state.set_xreg(1, 7)
        state.set_xreg(2, 6)
        run(state, Instruction("mul", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 42

    def test_mulh_signed(self, state):
        state.set_xreg(1, MASK)  # -1
        state.set_xreg(2, MASK)  # -1
        run(state, Instruction("mulh", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 0  # (-1 * -1) >> 64

    def test_mulhu(self, state):
        state.set_xreg(1, MASK)
        state.set_xreg(2, MASK)
        run(state, Instruction("mulhu", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == MASK - 1

    def test_div_round_toward_zero(self, state):
        state.set_xreg(1, (-7) & MASK)
        state.set_xreg(2, 2)
        run(state, Instruction("div", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == (-3) & MASK

    def test_div_by_zero(self, state):
        state.set_xreg(1, 42)
        state.set_xreg(2, 0)
        run(state, Instruction("div", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == MASK  # -1

    def test_div_overflow(self, state):
        state.set_xreg(1, 1 << 63)
        state.set_xreg(2, MASK)
        run(state, Instruction("div", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 1 << 63

    def test_rem_by_zero_returns_dividend(self, state):
        state.set_xreg(1, 42)
        state.set_xreg(2, 0)
        run(state, Instruction("rem", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 42

    def test_rem_overflow(self, state):
        state.set_xreg(1, 1 << 63)
        state.set_xreg(2, MASK)
        run(state, Instruction("rem", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == 0

    def test_divu_by_zero(self, state):
        state.set_xreg(1, 42)
        state.set_xreg(2, 0)
        run(state, Instruction("divu", rd=3, rs1=1, rs2=2))
        assert state.get_xreg(3) == MASK

    @given(u64, u64)
    def test_divu_remu_identity(self, a, b):
        state = MachineState(VISIONFIVE2)
        state.set_xreg(1, a)
        state.set_xreg(2, b)
        run(state, Instruction("divu", rd=3, rs1=1, rs2=2))
        run(state, Instruction("remu", rd=4, rs1=1, rs2=2))
        if b != 0:
            q, r = state.get_xreg(3), state.get_xreg(4)
            assert (q * b + r) & MASK == a


class TestControlFlow:
    def test_jal(self, state):
        run(state, Instruction("jal", rd=1, imm=0x100))
        assert state.pc == 0x8000_0100
        assert state.get_xreg(1) == 0x8000_0004

    def test_jalr_clears_low_bit(self, state):
        state.set_xreg(1, 0x8000_1001)
        run(state, Instruction("jalr", rd=2, rs1=1, imm=0))
        assert state.pc == 0x8000_1000

    def test_branch_taken(self, state):
        state.set_xreg(1, 1)
        state.set_xreg(2, 1)
        run(state, Instruction("beq", rs1=1, rs2=2, imm=0x40))
        assert state.pc == 0x8000_0040

    def test_branch_not_taken(self, state):
        run(state, Instruction("bne", rs1=0, rs2=0, imm=0x40))
        assert state.pc == 0x8000_0004

    @pytest.mark.parametrize("mnemonic,a,b,taken", [
        ("blt", MASK, 1, True),   # -1 < 1 signed
        ("bltu", MASK, 1, False),
        ("bge", 0, MASK, True),   # 0 >= -1 signed
        ("bgeu", 0, MASK, False),
    ])
    def test_signed_unsigned_branches(self, state, mnemonic, a, b, taken):
        state.set_xreg(1, a)
        state.set_xreg(2, b)
        run(state, Instruction(mnemonic, rs1=1, rs2=2, imm=0x40))
        assert (state.pc == 0x8000_0040) is taken


class TestMemory:
    def test_store_load_roundtrip(self, state):
        bus = DictBus()
        state.set_xreg(1, 0x8400_0000)
        state.set_xreg(2, 0xDEAD_BEEF_CAFE_F00D)
        run(state, Instruction("sd", rs1=1, rs2=2), bus)
        run(state, Instruction("ld", rd=3, rs1=1), bus)
        assert state.get_xreg(3) == 0xDEAD_BEEF_CAFE_F00D

    def test_lb_sign_extends(self, state):
        bus = DictBus()
        bus.write(0x8400_0000, 1, 0x80)
        state.set_xreg(1, 0x8400_0000)
        run(state, Instruction("lb", rd=2, rs1=1), bus)
        assert state.get_xreg(2) == MASK & ~0x7F

    def test_lbu_zero_extends(self, state):
        bus = DictBus()
        bus.write(0x8400_0000, 1, 0x80)
        state.set_xreg(1, 0x8400_0000)
        run(state, Instruction("lbu", rd=2, rs1=1), bus)
        assert state.get_xreg(2) == 0x80

    def test_misaligned_load_traps_on_vf2(self, state):
        state.set_xreg(1, 0x8400_0001)
        outcome = run(state, Instruction("lw", rd=2, rs1=1))
        assert outcome.trap is not None
        assert outcome.trap.cause == c.TrapCause.LOAD_ADDRESS_MISALIGNED
        assert state.csr.read(c.CSR_MTVAL) == 0x8400_0001
        assert state.pc == 0x8020_0000  # at the trap vector

    def test_misaligned_ok_on_p550(self):
        state = MachineState(PREMIER_P550)
        bus = DictBus()
        state.set_xreg(1, 0x8400_0001)
        outcome = run(state, Instruction("lw", rd=2, rs1=1), bus)
        assert outcome.trap is None

    def test_bus_error_becomes_access_fault(self, state):
        class FaultingBus:
            def read(self, a, s):
                raise BusError("nope")

            def write(self, a, s, v):
                raise BusError("nope")

        state.mode = c.M_MODE
        state.set_xreg(1, 0x8400_0000)
        outcome = execute_instruction(
            state, Instruction("ld", rd=2, rs1=1), FaultingBus()
        )
        assert outcome.trap.cause == c.TrapCause.LOAD_ACCESS_FAULT

    def test_pmp_denies_s_mode_without_entries(self, state):
        state.mode = c.S_MODE
        state.set_xreg(1, 0x8400_0000)
        outcome = run(state, Instruction("ld", rd=2, rs1=1))
        assert outcome.trap.cause == c.TrapCause.LOAD_ACCESS_FAULT

    def test_mprv_uses_mpp_for_loads(self, state):
        # M-mode with MPRV=1 and MPP=S: loads use S-mode PMP rules.
        state.csr.mstatus |= c.MSTATUS_MPRV
        state.csr.mstatus = (
            state.csr.mstatus & ~c.MSTATUS_MPP
        ) | (int(c.S_MODE) << c.MSTATUS_MPP_SHIFT)
        state.set_xreg(1, 0x8400_0000)
        outcome = run(state, Instruction("ld", rd=2, rs1=1))
        assert outcome.trap is not None  # S view has no PMP grants
        assert outcome.trap.cause == c.TrapCause.LOAD_ACCESS_FAULT


class TestCsrInstructions:
    def test_csrrw_swaps(self, state):
        state.csr.write(c.CSR_MSCRATCH, 0x111)
        state.set_xreg(1, 0x222)
        run(state, Instruction("csrrw", rd=2, rs1=1, csr=c.CSR_MSCRATCH))
        assert state.get_xreg(2) == 0x111
        assert state.csr.read(c.CSR_MSCRATCH) == 0x222

    def test_csrrs_with_x0_does_not_write(self, state):
        run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_MHARTID))
        assert state.get_xreg(1) == 0  # hart 0; and no trap on RO CSR

    def test_csrrw_to_read_only_traps(self, state):
        outcome = run(state, Instruction("csrrw", rd=1, rs1=1, csr=c.CSR_MHARTID))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_csrrci_clears_bits(self, state):
        state.csr.write(c.CSR_MSCRATCH, 0b1111)
        run(state, Instruction("csrrci", rd=1, rs1=0b101, csr=c.CSR_MSCRATCH))
        assert state.csr.read(c.CSR_MSCRATCH) == 0b1010

    def test_s_mode_cannot_touch_m_csrs(self, state):
        state.mode = c.S_MODE
        outcome = run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_MSTATUS))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_time_read_traps_on_vf2(self, state):
        state.mode = c.S_MODE
        outcome = run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_TIME))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_tvm_traps_satp_access(self, state):
        state.mode = c.S_MODE
        state.csr.mstatus |= c.MSTATUS_TVM
        outcome = run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_SATP))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_counter_gating(self, state):
        state.mode = c.S_MODE
        outcome = run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_CYCLE))
        assert outcome.trap is not None  # mcounteren.CY = 0
        state.mode = c.M_MODE
        state.csr.write(c.CSR_MCOUNTEREN, 1)
        state.mode = c.S_MODE
        state.pc = 0x8000_0000
        outcome = run(state, Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_CYCLE))
        assert outcome.trap is None


class TestSystemInstructions:
    def test_ecall_from_each_mode(self, state):
        for mode, cause in (
            (c.U_MODE, c.TrapCause.ECALL_FROM_U),
            (c.S_MODE, c.TrapCause.ECALL_FROM_S),
            (c.M_MODE, c.TrapCause.ECALL_FROM_M),
        ):
            fresh = MachineState(VISIONFIVE2)
            fresh.csr.mtvec = 0x8020_0000
            fresh.mode = mode
            outcome = run(fresh, Instruction("ecall"))
            assert outcome.trap.cause == cause

    def test_ebreak(self, state):
        outcome = run(state, Instruction("ebreak"))
        assert outcome.trap.cause == c.TrapCause.BREAKPOINT

    def test_mret_from_u_traps(self, state):
        state.mode = c.U_MODE
        outcome = run(state, Instruction("mret"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_wfi_from_u_traps(self, state):
        state.mode = c.U_MODE
        outcome = run(state, Instruction("wfi"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_wfi_from_s_with_tw_traps(self, state):
        state.mode = c.S_MODE
        state.csr.mstatus |= c.MSTATUS_TW
        outcome = run(state, Instruction("wfi"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_wfi_from_m_waits(self, state):
        outcome = run(state, Instruction("wfi"))
        assert outcome.is_wfi and state.waiting_for_interrupt
        assert state.pc == 0x8000_0004

    def test_sret_with_tsr_traps(self, state):
        state.mode = c.S_MODE
        state.csr.mstatus |= c.MSTATUS_TSR
        outcome = run(state, Instruction("sret"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_sfence_from_u_traps(self, state):
        state.mode = c.U_MODE
        outcome = run(state, Instruction("sfence.vma"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_sfence_with_tvm_traps(self, state):
        state.mode = c.S_MODE
        state.csr.mstatus |= c.MSTATUS_TVM
        outcome = run(state, Instruction("sfence.vma"))
        assert outcome.trap.cause == c.TrapCause.ILLEGAL_INSTRUCTION

    def test_fence_is_noop(self, state):
        outcome = run(state, Instruction("fence"))
        assert outcome.trap is None
        assert state.pc == 0x8000_0004

    def test_illegal_instruction_tval_holds_encoding(self, state):
        from repro.isa.encoding import encode

        state.mode = c.U_MODE
        instr = Instruction("mret")
        run(state, instr)
        assert state.csr.read(c.CSR_MTVAL) == encode(instr)
