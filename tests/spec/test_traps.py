"""Trap delivery, delegation, and xRET semantics of the reference machine."""

import pytest

from repro.isa import constants as c
from repro.isa.bits import get_field
from repro.spec.state import MachineState
from repro.spec.traps import (
    Trap,
    execute_mret,
    execute_sret,
    take_trap,
    trap_target_mode,
)
from repro.spec.platform import VISIONFIVE2


@pytest.fixture
def state():
    machine_state = MachineState(VISIONFIVE2)
    machine_state.csr.mtvec = 0x8020_0000
    machine_state.csr.stvec = 0x8400_0100
    return machine_state


class TestDelegation:
    def test_trap_from_m_always_to_m(self, state):
        state.mode = c.M_MODE
        state.csr.medeleg = c.MEDELEG_MASK
        trap = Trap(c.TrapCause.BREAKPOINT)
        assert trap_target_mode(state, trap) == c.M_MODE

    def test_undelegated_exception_to_m(self, state):
        state.mode = c.S_MODE
        assert trap_target_mode(state, Trap(c.TrapCause.ECALL_FROM_S)) == c.M_MODE

    def test_delegated_exception_to_s(self, state):
        state.mode = c.U_MODE
        state.csr.medeleg = 1 << c.TrapCause.ECALL_FROM_U
        assert trap_target_mode(state, Trap(c.TrapCause.ECALL_FROM_U)) == c.S_MODE

    def test_delegated_interrupt_to_s(self, state):
        state.mode = c.S_MODE
        state.csr.mideleg = c.MIP_STIP
        trap = Trap(c.IRQ_STI, is_interrupt=True)
        assert trap_target_mode(state, trap) == c.S_MODE

    def test_undelegated_interrupt_to_m(self, state):
        state.mode = c.S_MODE
        trap = Trap(c.IRQ_MTI, is_interrupt=True)
        assert trap_target_mode(state, trap) == c.M_MODE


class TestTrapDelivery:
    def test_m_trap_sets_state(self, state):
        state.mode = c.S_MODE
        state.pc = 0x8400_1234
        state.csr.mstatus |= c.MSTATUS_MIE
        take_trap(state, Trap(c.TrapCause.ECALL_FROM_S))
        assert state.mode == c.M_MODE
        assert state.pc == 0x8020_0000
        assert state.csr.mepc == 0x8400_1234
        assert state.csr.mcause == c.TrapCause.ECALL_FROM_S
        mstatus = state.csr.mstatus
        assert get_field(mstatus, c.MSTATUS_MPP) == c.S_MODE
        assert mstatus & c.MSTATUS_MPIE
        assert not mstatus & c.MSTATUS_MIE

    def test_s_trap_sets_state(self, state):
        state.mode = c.U_MODE
        state.pc = 0x9000_0000
        state.csr.medeleg = 1 << c.TrapCause.ECALL_FROM_U
        state.csr.mstatus |= c.MSTATUS_SIE
        take_trap(state, Trap(c.TrapCause.ECALL_FROM_U))
        assert state.mode == c.S_MODE
        assert state.pc == 0x8400_0100
        assert state.csr.sepc == 0x9000_0000
        mstatus = state.csr.mstatus
        assert get_field(mstatus, c.MSTATUS_SPP) == 0  # came from U
        assert mstatus & c.MSTATUS_SPIE
        assert not mstatus & c.MSTATUS_SIE

    def test_interrupt_sets_high_bit(self, state):
        take_trap(state, Trap(c.IRQ_MTI, is_interrupt=True))
        assert state.csr.mcause == c.INTERRUPT_BIT | c.IRQ_MTI

    def test_tval_written(self, state):
        take_trap(state, Trap(c.TrapCause.LOAD_ACCESS_FAULT, tval=0xBAD))
        assert state.csr.read(c.CSR_MTVAL) == 0xBAD

    def test_vectored_interrupt_target(self, state):
        state.csr.mtvec = 0x8020_0001  # vectored
        take_trap(state, Trap(c.IRQ_MTI, is_interrupt=True))
        assert state.pc == 0x8020_0000 + 4 * c.IRQ_MTI

    def test_vectored_exception_uses_base(self, state):
        state.csr.mtvec = 0x8020_0001
        take_trap(state, Trap(c.TrapCause.ILLEGAL_INSTRUCTION))
        assert state.pc == 0x8020_0000

    def test_trap_clears_wfi(self, state):
        state.waiting_for_interrupt = True
        take_trap(state, Trap(c.IRQ_MTI, is_interrupt=True))
        assert not state.waiting_for_interrupt


class TestMret:
    def test_returns_to_mpp_and_mepc(self, state):
        state.mode = c.M_MODE
        state.csr.mepc = 0x8400_0000
        state.csr.mstatus = (
            state.csr.mstatus & ~c.MSTATUS_MPP
        ) | (int(c.S_MODE) << c.MSTATUS_MPP_SHIFT) | c.MSTATUS_MPIE
        execute_mret(state)
        assert state.mode == c.S_MODE
        assert state.pc == 0x8400_0000
        assert state.csr.mstatus & c.MSTATUS_MIE  # MPIE -> MIE
        assert state.csr.mstatus & c.MSTATUS_MPIE  # set to 1
        assert get_field(state.csr.mstatus, c.MSTATUS_MPP) == c.U_MODE

    def test_clears_mprv_when_leaving_m(self, state):
        state.csr.mstatus |= c.MSTATUS_MPRV
        state.csr.mstatus = (
            state.csr.mstatus & ~c.MSTATUS_MPP
        ) | (int(c.U_MODE) << c.MSTATUS_MPP_SHIFT)
        execute_mret(state)
        assert not state.csr.mstatus & c.MSTATUS_MPRV

    def test_keeps_mprv_when_staying_m(self, state):
        state.csr.mstatus |= c.MSTATUS_MPRV  # MPP is M at reset
        execute_mret(state)
        assert state.csr.mstatus & c.MSTATUS_MPRV


class TestSret:
    def test_returns_to_spp(self, state):
        state.mode = c.S_MODE
        state.csr.sepc = 0x9000_0000
        state.csr.mstatus |= c.MSTATUS_SPP | c.MSTATUS_SPIE
        execute_sret(state)
        assert state.mode == c.S_MODE  # SPP was 1
        assert state.pc == 0x9000_0000
        assert state.csr.mstatus & c.MSTATUS_SIE
        assert get_field(state.csr.mstatus, c.MSTATUS_SPP) == 0

    def test_returns_to_user(self, state):
        state.mode = c.S_MODE
        state.csr.mstatus &= ~c.MSTATUS_SPP
        execute_sret(state)
        assert state.mode == c.U_MODE


class TestRoundTrip:
    def test_trap_then_mret_restores_context(self, state):
        state.mode = c.S_MODE
        state.pc = 0x8400_5678
        state.csr.mstatus |= c.MSTATUS_MIE
        take_trap(state, Trap(c.TrapCause.ECALL_FROM_S))
        execute_mret(state)
        assert state.mode == c.S_MODE
        assert state.pc == 0x8400_5678
        assert state.csr.mstatus & c.MSTATUS_MIE

    def test_trap_str(self):
        assert "ECALL" in str(Trap(c.TrapCause.ECALL_FROM_S))
        assert "MACHINE_TIMER" in str(Trap(c.IRQ_MTI, is_interrupt=True))
