"""Reference CSR file: WARL legalization, views, and existence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import constants as c
from repro.spec.csrs import (
    CsrFile,
    known_csr_addresses,
    legalize_mstatus,
    legalize_pmpcfg_byte,
    legalize_satp,
    legalize_tvec,
)
from repro.spec.platform import PREMIER_P550, RVA23_MACHINE, VISIONFIVE2

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@pytest.fixture
def csrs():
    return CsrFile(VISIONFIVE2)


class TestMstatusLegalization:
    def test_reset_value(self, csrs):
        assert (csrs.mstatus >> 11) & 3 == 3  # MPP = M at reset
        assert (csrs.mstatus >> 32) & 3 == 2  # UXL = 64-bit

    def test_mpp_rejects_reserved_value(self, csrs):
        before = csrs.mstatus
        csrs.write(c.CSR_MSTATUS, 2 << 11)
        assert (csrs.mstatus >> 11) & 3 == (before >> 11) & 3

    @pytest.mark.parametrize("mpp", [0, 1, 3])
    def test_mpp_accepts_supported_values(self, csrs, mpp):
        csrs.write(c.CSR_MSTATUS, mpp << 11)
        assert (csrs.mstatus >> 11) & 3 == mpp

    def test_uxl_sxl_read_only(self, csrs):
        csrs.write(c.CSR_MSTATUS, 0)
        assert (csrs.mstatus >> 32) & 3 == 2
        assert (csrs.mstatus >> 34) & 3 == 2

    def test_sd_follows_fs(self, csrs):
        csrs.write(c.CSR_MSTATUS, 3 << 13)  # FS = dirty
        assert csrs.mstatus >> 63 == 1
        csrs.write(c.CSR_MSTATUS, 0)
        assert csrs.mstatus >> 63 == 0

    def test_mie_sie_writable(self, csrs):
        csrs.write(c.CSR_MSTATUS, c.MSTATUS_MIE | c.MSTATUS_SIE)
        assert csrs.mstatus & c.MSTATUS_MIE
        assert csrs.mstatus & c.MSTATUS_SIE

    @given(u64)
    def test_legalization_idempotent(self, value):
        once = legalize_mstatus(0, value)
        assert legalize_mstatus(0, once) | (once & c.MSTATUS_MPP) == \
            once | (once & c.MSTATUS_MPP)
        # Fully idempotent when applied to its own output with same old.
        assert legalize_mstatus(once, once) == once

    @given(u64)
    def test_reserved_bits_never_set(self, value):
        result = legalize_mstatus(0, value)
        reserved = ~(
            c.MSTATUS_WRITABLE_MASK | c.MSTATUS_UXL | c.MSTATUS_SXL | c.MSTATUS_SD
        ) & ((1 << 64) - 1)
        assert result & reserved == 0


class TestSstatusView:
    def test_sstatus_is_masked_view(self, csrs):
        csrs.write(c.CSR_MSTATUS, c.MSTATUS_SIE | c.MSTATUS_MIE | c.MSTATUS_SUM)
        sstatus = csrs.read(c.CSR_SSTATUS)
        assert sstatus & c.MSTATUS_SIE
        assert sstatus & c.MSTATUS_SUM
        assert not sstatus & c.MSTATUS_MIE  # M-only field hidden

    def test_sstatus_write_cannot_touch_m_fields(self, csrs):
        before_mie = csrs.mstatus & c.MSTATUS_MIE
        csrs.write(c.CSR_SSTATUS, c.MSTATUS_MIE | c.MSTATUS_SIE)
        assert csrs.mstatus & c.MSTATUS_MIE == before_mie
        assert csrs.mstatus & c.MSTATUS_SIE

    @given(u64)
    def test_sstatus_write_confined_to_mask(self, value):
        csrs = CsrFile(VISIONFIVE2)
        before = csrs.mstatus
        csrs.write(c.CSR_SSTATUS, value)
        changed = csrs.mstatus ^ before
        assert changed & ~c.SSTATUS_MASK == 0


class TestTvecLegalization:
    def test_direct_mode(self, csrs):
        csrs.write(c.CSR_MTVEC, 0x8000_0000)
        assert csrs.mtvec == 0x8000_0000

    def test_vectored_mode(self, csrs):
        csrs.write(c.CSR_MTVEC, 0x8000_0001)
        assert csrs.mtvec == 0x8000_0001

    @pytest.mark.parametrize("reserved_mode", [2, 3])
    def test_reserved_mode_keeps_old(self, csrs, reserved_mode):
        csrs.write(c.CSR_MTVEC, 0x8000_0001)
        csrs.write(c.CSR_MTVEC, 0x9000_0000 | reserved_mode)
        assert csrs.mtvec == 0x9000_0001  # new base, old mode

    def test_legalize_tvec_pure(self):
        assert legalize_tvec(0x1, 0x1002) == 0x1001


class TestEpcAndCause:
    def test_mepc_low_bits_cleared(self, csrs):
        csrs.write(c.CSR_MEPC, 0x8000_0003)
        assert csrs.mepc == 0x8000_0000

    def test_sepc_low_bits_cleared(self, csrs):
        csrs.write(c.CSR_SEPC, 0x8000_0006)
        assert csrs.sepc == 0x8000_0004

    def test_mcause_masked(self, csrs):
        csrs.write(c.CSR_MCAUSE, (1 << 63) | 0xFFF)
        assert csrs.mcause == (1 << 63) | 0x3F


class TestSatp:
    def test_bare_mode_accepted(self, csrs):
        csrs.write(c.CSR_SATP, 0)
        assert csrs.satp == 0

    def test_sv39_accepted(self, csrs):
        value = (8 << 60) | 0x12345
        csrs.write(c.CSR_SATP, value)
        assert csrs.satp == value

    def test_unsupported_mode_ignored(self, csrs):
        csrs.write(c.CSR_SATP, (8 << 60) | 0x1)
        before = csrs.satp
        csrs.write(c.CSR_SATP, (3 << 60) | 0x999)  # reserved mode
        assert csrs.satp == before

    def test_legalize_satp_pure(self):
        assert legalize_satp(0x42, 5 << 60) == 0x42


class TestInterruptRegisters:
    def test_mie_masked(self, csrs):
        csrs.write(c.CSR_MIE, (1 << 64) - 1)
        assert csrs.mie == c.MIP_MASK

    def test_mip_software_writable_bits(self, csrs):
        csrs.write(c.CSR_MIP, (1 << 64) - 1)
        assert csrs.mip == c.MIP_WRITABLE

    def test_mip_hardware_lines(self, csrs):
        csrs.set_interrupt_line(c.IRQ_MTI, True)
        assert csrs.mip & c.MIP_MTIP
        # MTIP is not software-clearable through mip writes.
        csrs.write(c.CSR_MIP, 0)
        assert csrs.mip & c.MIP_MTIP
        csrs.set_interrupt_line(c.IRQ_MTI, False)
        assert not csrs.mip & c.MIP_MTIP

    def test_sie_is_delegated_view(self, csrs):
        csrs.write(c.CSR_MIDELEG, c.MIP_SSIP)
        csrs.write(c.CSR_MIE, c.MIP_SSIP | c.MIP_STIP | c.MIP_MTIP)
        assert csrs.read(c.CSR_SIE) == c.MIP_SSIP

    def test_sie_write_limited_by_delegation(self, csrs):
        csrs.write(c.CSR_MIDELEG, c.MIP_SSIP)
        csrs.write(c.CSR_SIE, c.SIP_MASK)
        assert csrs.mie == c.MIP_SSIP

    def test_sip_write_only_ssip(self, csrs):
        csrs.write(c.CSR_MIDELEG, c.SIP_MASK)
        csrs.write(c.CSR_SIP, c.SIP_MASK)
        assert csrs.mip_sw == c.MIP_SSIP

    def test_mideleg_masked(self, csrs):
        csrs.write(c.CSR_MIDELEG, (1 << 64) - 1)
        assert csrs.mideleg == c.MIDELEG_MASK

    def test_medeleg_masked(self, csrs):
        csrs.write(c.CSR_MEDELEG, (1 << 64) - 1)
        assert csrs.medeleg == c.MEDELEG_MASK

    def test_mideleg_hardwired_platform(self):
        csrs = CsrFile(VISIONFIVE2.with_overrides(mideleg_hardwired=True))
        assert csrs.mideleg == c.MIDELEG_MASK
        csrs.write(c.CSR_MIDELEG, 0)
        assert csrs.mideleg == c.MIDELEG_MASK


class TestPmpRegisters:
    def test_cfg_roundtrip(self, csrs):
        csrs.write(c.CSR_PMPCFG0, 0x1F1F)
        assert csrs.pmpcfg[0] == 0x1F
        assert csrs.pmpcfg[1] == 0x1F

    def test_w_without_r_rejected(self, csrs):
        csrs.write(c.CSR_PMPCFG0, c.PMP_W)
        assert csrs.pmpcfg[0] == 0

    def test_legalize_byte_pure(self):
        assert legalize_pmpcfg_byte(0, c.PMP_W | c.PMP_R) == c.PMP_W | c.PMP_R
        assert legalize_pmpcfg_byte(0x7, c.PMP_W) == 0x7  # keeps old

    def test_reserved_bits_cleared(self, csrs):
        csrs.write(c.CSR_PMPCFG0, 0x60 | c.PMP_R)  # bits 5/6 reserved
        assert csrs.pmpcfg[0] == c.PMP_R

    def test_locked_entry_not_writable(self, csrs):
        csrs.write(c.CSR_PMPCFG0, c.PMP_L | c.PMP_R)
        csrs.write(c.CSR_PMPCFG0, c.PMP_R | c.PMP_W | c.PMP_X)
        assert csrs.pmpcfg[0] == c.PMP_L | c.PMP_R

    def test_locked_entry_addr_not_writable(self, csrs):
        csrs.write(c.CSR_PMPADDR0, 0x100)
        csrs.write(c.CSR_PMPCFG0, c.PMP_L | c.PMP_R)
        csrs.write(c.CSR_PMPADDR0, 0x200)
        assert csrs.pmpaddr[0] == 0x100

    def test_locked_tor_locks_previous_addr(self, csrs):
        tor_locked = c.PMP_L | (int(c.PmpAddressMode.TOR) << c.PMP_A_SHIFT)
        csrs.write(c.CSR_PMPCFG0, tor_locked << 8)  # entry 1 locked TOR
        csrs.write(c.CSR_PMPADDR0, 0x400)
        assert csrs.pmpaddr[0] == 0  # write ignored

    def test_beyond_count_reads_zero_ignores_writes(self):
        csrs = CsrFile(VISIONFIVE2)  # 8 entries
        high = c.CSR_PMPADDR0 + 12
        assert csrs.exists(high)
        csrs.write(high, 0x1234)
        assert csrs.read(high) == 0

    def test_pmpaddr_masked_to_54_bits(self, csrs):
        csrs.write(c.CSR_PMPADDR0, (1 << 64) - 1)
        assert csrs.pmpaddr[0] == (1 << 54) - 1

    def test_odd_pmpcfg_absent_on_rv64(self, csrs):
        assert not csrs.exists(c.CSR_PMPCFG0 + 1)


class TestExistence:
    def test_time_absent_on_vf2(self, csrs):
        assert not csrs.exists(c.CSR_TIME)

    def test_time_present_on_rva23(self):
        assert CsrFile(RVA23_MACHINE).exists(c.CSR_TIME)

    def test_stimecmp_requires_sstc(self, csrs):
        assert not csrs.exists(c.CSR_STIMECMP)
        assert CsrFile(RVA23_MACHINE).exists(c.CSR_STIMECMP)

    def test_h_csrs_require_extension(self, csrs):
        assert not csrs.exists(c.CSR_HSTATUS)
        assert CsrFile(PREMIER_P550).exists(c.CSR_HSTATUS)

    def test_vendor_csrs(self):
        csrs = CsrFile(PREMIER_P550)
        assert csrs.exists(0x7C0)
        csrs.write(0x7C0, 0x1)
        assert csrs.read(0x7C0) == 0x1

    def test_unknown_csr_raises(self, csrs):
        with pytest.raises(KeyError):
            csrs.read(0x123)

    def test_known_addresses_all_exist(self):
        for config in (VISIONFIVE2, PREMIER_P550, RVA23_MACHINE):
            csrs = CsrFile(config)
            for addr in known_csr_addresses(config):
                assert csrs.exists(addr), hex(addr)
                csrs.read(addr)  # must not raise


class TestMachineInformation:
    def test_identity_registers(self):
        csrs = CsrFile(VISIONFIVE2, hartid=2)
        assert csrs.read(c.CSR_MHARTID) == 2
        assert csrs.read(c.CSR_MVENDORID) == VISIONFIVE2.mvendorid
        assert csrs.read(c.CSR_MARCHID) == VISIONFIVE2.marchid

    def test_misa_reports_extensions(self, csrs):
        misa = csrs.read(c.CSR_MISA)
        assert misa >> 62 == 2  # RV64
        assert misa & (1 << 18)  # S
        assert misa & (1 << 20)  # U

    def test_misa_write_ignored(self, csrs):
        before = csrs.read(c.CSR_MISA)
        csrs.write(c.CSR_MISA, 0)
        assert csrs.read(c.CSR_MISA) == before


class TestSstc:
    def test_stip_follows_stimecmp(self):
        now = [100]
        csrs = CsrFile(RVA23_MACHINE, time_source=lambda: now[0])
        csrs.write(c.CSR_MENVCFG, c.MENVCFG_STCE)
        csrs.write(c.CSR_STIMECMP, 200)
        assert not csrs.mip & c.MIP_STIP
        now[0] = 200
        assert csrs.mip & c.MIP_STIP

    def test_stce_not_writable_without_sstc(self):
        csrs = CsrFile(VISIONFIVE2)
        csrs.write(c.CSR_MENVCFG, c.MENVCFG_STCE)
        assert csrs.menvcfg & c.MENVCFG_STCE == 0


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, csrs):
        csrs.write(c.CSR_MSCRATCH, 0x1234)
        csrs.write(c.CSR_PMPADDR0, 0x999)
        snap = csrs.snapshot()
        csrs.write(c.CSR_MSCRATCH, 0)
        csrs.write(c.CSR_PMPADDR0, 0)
        csrs.restore(snap)
        assert csrs.read(c.CSR_MSCRATCH) == 0x1234
        assert csrs.pmpaddr[0] == 0x999
