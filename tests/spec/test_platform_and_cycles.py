"""Platform configurations and the cycle cost model."""

import dataclasses

import pytest

from repro.hart.cycles import (
    GENERIC_CYCLES,
    PREMIER_P550_CYCLES,
    TIMEBASE_FREQUENCY,
    VISIONFIVE2_CYCLES,
    cycle_model_for,
    cycles_to_mtime,
    mtime_to_cycles,
)
from repro.spec.platform import (
    PLATFORMS,
    PREMIER_P550,
    QEMU_VIRT,
    RVA23_MACHINE,
    VISIONFIVE2,
    PlatformConfig,
)


class TestPlatformConfig:
    def test_registry_complete(self):
        assert {"visionfive2", "premier-p550", "rva23-reference",
                "qemu-virt"} <= set(PLATFORMS)

    def test_table3_characteristics(self):
        assert VISIONFIVE2.num_harts == 4
        assert VISIONFIVE2.frequency_hz == 1_500_000_000
        assert PREMIER_P550.frequency_hz == 1_800_000_000
        assert PREMIER_P550.ram_bytes == 16 * 1024 ** 3

    def test_feature_matrix(self):
        assert not VISIONFIVE2.has_hw_misaligned
        assert PREMIER_P550.has_hw_misaligned
        assert not VISIONFIVE2.has_h_extension
        assert PREMIER_P550.has_h_extension
        assert RVA23_MACHINE.has_sstc and RVA23_MACHINE.has_hw_time_csr

    def test_vendor_csrs_on_p550_only(self):
        assert PREMIER_P550.vendor_csrs == (0x7C0, 0x7C1, 0x7C2, 0x7C3)
        assert VISIONFIVE2.vendor_csrs == ()

    def test_with_overrides(self):
        modified = VISIONFIVE2.with_overrides(pmp_count=16)
        assert modified.pmp_count == 16
        assert modified.frequency_hz == VISIONFIVE2.frequency_hz
        assert VISIONFIVE2.pmp_count == 8  # original untouched

    def test_invalid_pmp_count_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(pmp_count=65)

    def test_invalid_hart_count_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(num_harts=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            VISIONFIVE2.pmp_count = 4

    def test_ram_end(self):
        assert QEMU_VIRT.ram_end == QEMU_VIRT.ram_base + QEMU_VIRT.ram_bytes

    def test_default_ram_covers_canonical_layout(self):
        from repro.system import memory_regions

        regions = memory_regions(QEMU_VIRT)
        assert regions["enclave"].end <= QEMU_VIRT.ram_base + min(
            QEMU_VIRT.ram_bytes, 1 << 32
        )


class TestCycleModel:
    def test_lookup_by_platform(self):
        assert cycle_model_for(VISIONFIVE2) is VISIONFIVE2_CYCLES
        assert cycle_model_for(PREMIER_P550) is PREMIER_P550_CYCLES
        assert cycle_model_for(QEMU_VIRT) is GENERIC_CYCLES

    def test_paper_calibration_shape(self):
        """Table 4's inversion is encoded in the model parameters."""
        # P550 retires ordinary instructions faster...
        assert PREMIER_P550_CYCLES.instruction < VISIONFIVE2_CYCLES.instruction
        # ...but pays more for TLB flushes (world switches).
        assert PREMIER_P550_CYCLES.tlb_flush > VISIONFIVE2_CYCLES.tlb_flush

    def test_scale_ns(self):
        assert VISIONFIVE2_CYCLES.scale_ns(1500, 1_500_000_000) == \
            pytest.approx(1000.0)

    def test_time_conversions_roundtrip(self):
        cycles = 3_000_000
        ticks = cycles_to_mtime(cycles, VISIONFIVE2.frequency_hz)
        assert ticks == cycles * TIMEBASE_FREQUENCY // VISIONFIVE2.frequency_hz
        back = mtime_to_cycles(ticks, VISIONFIVE2.frequency_hz)
        assert abs(back - cycles) <= VISIONFIVE2.frequency_hz // TIMEBASE_FREQUENCY

    def test_costs_positive(self):
        for model in (VISIONFIVE2_CYCLES, PREMIER_P550_CYCLES, GENERIC_CYCLES):
            assert model.instruction > 0
            assert model.trap_entry > 0
            assert model.tlb_flush > 0
            assert model.xret > 0


class TestTrapStats:
    def test_counters_and_events(self):
        from repro.hart.stats import TrapStats, cause_name
        from repro.isa.constants import IRQ_MTI, TrapCause

        stats = TrapStats()
        stats.record_trap(hart=0, cause=TrapCause.ECALL_FROM_S,
                          is_interrupt=False, from_mode=None, mtime=10)
        stats.annotate_last("firmware", detail="sbi:test")
        stats.record_trap(hart=0, cause=IRQ_MTI, is_interrupt=True,
                          from_mode=None, mtime=20)
        assert stats.total_traps == 2
        assert stats.trap_counts["ECALL_FROM_S"] == 1
        assert stats.handler_counts["firmware"] == 1
        assert stats.detail_counts()["sbi:test"] == 1
        assert cause_name(IRQ_MTI, True) == "irq:MACHINE_TIMER"

    def test_windowing(self):
        from repro.hart.stats import TrapStats
        from repro.isa.constants import TrapCause

        stats = TrapStats()
        for mtime in (0, 5, 14):
            stats.record_trap(hart=0, cause=TrapCause.ECALL_FROM_S,
                              is_interrupt=False, from_mode=None, mtime=mtime)
        windows = stats.events_by_window(10)
        assert len(windows) == 2
        assert sum(windows[0].values()) == 2
        assert sum(windows[1].values()) == 1

    def test_reset(self):
        from repro.hart.stats import TrapStats
        from repro.isa.constants import TrapCause

        stats = TrapStats()
        stats.record_trap(hart=0, cause=TrapCause.BREAKPOINT,
                          is_interrupt=False, from_mode=None, mtime=0)
        stats.note_world_switch()
        stats.reset()
        assert stats.total_traps == 0
        assert stats.world_switches == 0
        assert not stats.events

    def test_events_can_be_disabled(self):
        from repro.hart.stats import TrapStats
        from repro.isa.constants import TrapCause

        stats = TrapStats(keep_events=False)
        stats.record_trap(hart=0, cause=TrapCause.BREAKPOINT,
                          is_interrupt=False, from_mode=None, mtime=0)
        assert stats.total_traps == 1
        assert not stats.events
