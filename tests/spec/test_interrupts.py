"""Interrupt selection: priority, delegation, and enable gating."""

import pytest

from repro.isa import constants as c
from repro.spec.interrupts import pending_interrupt, pending_interrupt_for
from repro.spec.platform import VISIONFIVE2
from repro.spec.state import MachineState


def select(mip, mie, mideleg=0, mode=c.M_MODE, mie_bit=True, sie_bit=False):
    return pending_interrupt_for(mip, mie, mideleg, mode, mie_bit, sie_bit)


class TestGlobalEnables:
    def test_m_mode_needs_mie(self):
        assert select(c.MIP_MTIP, c.MIP_MTIP, mode=c.M_MODE, mie_bit=False) is None
        assert select(c.MIP_MTIP, c.MIP_MTIP, mode=c.M_MODE, mie_bit=True) == c.IRQ_MTI

    def test_lower_mode_ignores_mie_for_m_interrupts(self):
        assert select(c.MIP_MTIP, c.MIP_MTIP, mode=c.S_MODE, mie_bit=False) == c.IRQ_MTI
        assert select(c.MIP_MTIP, c.MIP_MTIP, mode=c.U_MODE, mie_bit=False) == c.IRQ_MTI

    def test_s_mode_needs_sie_for_delegated(self):
        assert select(c.MIP_STIP, c.MIP_STIP, mideleg=c.MIP_STIP,
                      mode=c.S_MODE, sie_bit=False) is None
        assert select(c.MIP_STIP, c.MIP_STIP, mideleg=c.MIP_STIP,
                      mode=c.S_MODE, sie_bit=True) == c.IRQ_STI

    def test_u_mode_takes_delegated_regardless_of_sie(self):
        assert select(c.MIP_STIP, c.MIP_STIP, mideleg=c.MIP_STIP,
                      mode=c.U_MODE, sie_bit=False) == c.IRQ_STI

    def test_delegated_never_taken_in_m(self):
        assert select(c.MIP_STIP, c.MIP_STIP, mideleg=c.MIP_STIP,
                      mode=c.M_MODE, mie_bit=True) is None


class TestMasking:
    def test_disabled_interrupt_not_taken(self):
        assert select(c.MIP_MTIP, 0) is None

    def test_pending_required(self):
        assert select(0, c.MIP_MASK) is None


class TestPriority:
    def test_external_beats_software_beats_timer(self):
        pending = c.MIP_MEIP | c.MIP_MSIP | c.MIP_MTIP
        assert select(pending, pending) == c.IRQ_MEI
        assert select(c.MIP_MSIP | c.MIP_MTIP, pending) == c.IRQ_MSI
        assert select(c.MIP_MTIP, pending) == c.IRQ_MTI

    def test_m_destined_beats_s_destined(self):
        # Non-delegated SSI (destined for M) vs delegated SEI: M wins even
        # though SEI has higher per-interrupt priority.
        pending = c.MIP_SSIP | c.MIP_SEIP
        choice = select(pending, pending, mideleg=c.MIP_SEIP,
                        mode=c.S_MODE, mie_bit=True, sie_bit=True)
        assert choice == c.IRQ_SSI

    def test_s_level_priority_order(self):
        pending = c.MIP_SEIP | c.MIP_SSIP | c.MIP_STIP
        choice = select(pending, pending, mideleg=c.SIP_MASK,
                        mode=c.U_MODE)
        assert choice == c.IRQ_SEI


class TestMachineStateIntegration:
    def test_pending_interrupt_returns_trap(self):
        state = MachineState(VISIONFIVE2)
        state.csr.mie = c.MIP_MTIP
        state.csr.set_interrupt_line(c.IRQ_MTI, True)
        state.csr.mstatus |= c.MSTATUS_MIE
        trap = pending_interrupt(state)
        assert trap is not None
        assert trap.is_interrupt and trap.cause == c.IRQ_MTI

    def test_no_pending_returns_none(self):
        state = MachineState(VISIONFIVE2)
        assert pending_interrupt(state) is None
