"""The dispatch-loop coverage hook, end to end.

Coverage must be opt-in (``machine.coverage`` defaults to None — the
disabled path is one branch, like the tracer), must attribute traps to
the world that took them via the monitor's shared ``world_view``, and
must never perturb the simulation it observes.
"""

from __future__ import annotations

from repro.coverage import CoverageMap
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized
from repro.verif.fuzz import fuzz_scenario


def _sbi_workload(kernel, ctx):
    now = kernel.read_time(ctx)
    kernel.sbi_set_timer(ctx, now + 50)
    ctx.compute(300)
    kernel.sbi_send_ipi(ctx, 1)


class TestOptIn:
    def test_coverage_defaults_to_none(self):
        system = build_virtualized(VISIONFIVE2, workload=_sbi_workload)
        assert system.machine.coverage is None
        assert "sbi system reset" in system.run()

    def test_native_machine_has_no_world_view(self):
        system = build_native(VISIONFIVE2, workload=_sbi_workload)
        assert system.machine.world_view is None


class TestAttribution:
    def test_native_traps_attribute_to_native(self):
        system = build_native(VISIONFIVE2, workload=_sbi_workload)
        cov = CoverageMap()
        system.machine.coverage = cov
        assert "sbi system reset" in system.run()
        assert cov.records > 0
        assert {world for world, _c, _b, _h in cov.paths} == {"NATIVE"}

    def test_virtualized_traps_attribute_to_monitor_worlds(self):
        system = build_virtualized(VISIONFIVE2, workload=_sbi_workload)
        cov = CoverageMap()
        system.machine.coverage = cov
        assert "sbi system reset" in system.run()
        worlds = {world for world, _c, _b, _h in cov.paths}
        # The OS's ecalls trap while the hart is in the OS world; the
        # monitor's re-dispatch into firmware traps as FIRMWARE.
        assert "OS" in worlds
        assert worlds <= {"FIRMWARE", "OS"}

    def test_coverage_does_not_perturb_the_run(self):
        plain = build_virtualized(VISIONFIVE2, workload=_sbi_workload)
        halt_plain = plain.run()
        covered = build_virtualized(VISIONFIVE2, workload=_sbi_workload)
        covered.machine.coverage = CoverageMap()
        assert covered.run() == halt_plain
        plain_steps = sum(h.instret for h in plain.machine.harts)
        covered_steps = sum(h.instret for h in covered.machine.harts)
        assert covered_steps == plain_steps
        assert (covered.machine.stats.total_traps
                == plain.machine.stats.total_traps)


class TestDifferentialCase:
    def test_one_case_covers_native_and_monitor_worlds(self):
        cov = CoverageMap()
        finding = fuzz_scenario(3, length=6, coverage=cov)
        assert finding is None  # no seeded bugs: deployments agree
        worlds = {world for world, _c, _b, _h in cov.paths}
        # Both halves of the differential run feed one map: the native
        # half as NATIVE, the virtualized half through the monitor.
        assert "NATIVE" in worlds
        assert "FIRMWARE" in worlds or "OS" in worlds

    def test_differential_coverage_is_deterministic(self):
        a, b = CoverageMap(), CoverageMap()
        assert fuzz_scenario(3, length=6, coverage=a) is None
        assert fuzz_scenario(3, length=6, coverage=b) is None
        assert a.canonical_json() == b.canonical_json()
