"""The coverage map: deterministic slots, order-independent union.

The whole guided-fuzzing story rests on two properties of
:class:`~repro.coverage.map.CoverageMap`: identical trap sequences
produce byte-identical documents in any process (no salted hashes, no
timestamps), and union is commutative/associative so campaign shards
merge to the same bytes at any worker count.
"""

from __future__ import annotations

import pytest

from repro.core.vcpu import World
from repro.coverage import (
    BLOCK_BITS,
    COVERAGE_SCHEMA,
    CoverageMap,
    MAP_BITS,
    MAP_SIZE,
    trap_path_space,
)
from repro.coverage.map import WORLD_KEYS, cause_key


def _record_sequence(cov: CoverageMap, traps) -> None:
    cov.begin_run()
    for hartid, cause, is_interrupt, pc, world in traps:
        cov.record(hartid, cause, is_interrupt, pc, world)


TRAPS_A = [
    (0, 9, False, 0x8000_0000, None),
    (0, 7, True, 0x8000_0040, World.FIRMWARE),
    (1, 2, False, 0x4020_0010, World.OS),
    (0, 9, False, 0x8000_0000, None),
]
TRAPS_B = [
    (0, 5, True, 0x8000_0080, World.OS),
    (1, 0, False, 0x4020_0400, World.FIRMWARE),
]


class TestDeterminism:
    def test_same_traps_same_digest(self):
        a, b = CoverageMap(), CoverageMap()
        _record_sequence(a, TRAPS_A)
        _record_sequence(b, TRAPS_A)
        assert a.canonical_json() == b.canonical_json()
        assert a.digest() == b.digest()

    def test_different_traps_different_digest(self):
        a, b = CoverageMap(), CoverageMap()
        _record_sequence(a, TRAPS_A)
        _record_sequence(b, TRAPS_B)
        assert a.digest() != b.digest()

    def test_record_counts(self):
        cov = CoverageMap()
        _record_sequence(cov, TRAPS_A)
        assert cov.records == len(TRAPS_A)
        # One repeated trap: three distinct paths out of four records.
        assert cov.path_count() == 3
        assert cov.bit_count() >= 3

    def test_world_none_is_native(self):
        cov = CoverageMap()
        cov.record(0, 8, False, 0x8000_0000, None)
        cov.record(0, 8, False, 0x8000_0000, World.FIRMWARE)
        cov.record(0, 8, False, 0x8000_0000, World.OS)
        worlds = {world for world, _c, _b, _h in cov.paths}
        assert worlds == {"NATIVE", "FIRMWARE", "OS"}

    def test_pc_block_drops_low_bits_only(self):
        cov = CoverageMap()
        cov.begin_run()
        cov.record(0, 8, False, 0x8000_0000, None)
        cov.begin_run()
        cov.record(0, 8, False, 0x8000_0000 | ((1 << BLOCK_BITS) - 1), None)
        assert cov.path_count() == 1  # same 16-byte block
        cov.begin_run()
        cov.record(0, 8, False, 0x8000_0000 + (1 << BLOCK_BITS), None)
        assert cov.path_count() == 2  # next block is distinct


class TestEdgeChaining:
    def test_trap_order_changes_the_bitmap(self):
        # Three *distinct* traps on one hart: reversing a palindromic
        # sequence would produce the same edges.
        traps = [
            (0, 9, False, 0x8000_0000, None),
            (0, 7, True, 0x8000_0040, World.FIRMWARE),
            (0, 2, False, 0x4020_0010, World.OS),
        ]
        forward, backward = CoverageMap(), CoverageMap()
        _record_sequence(forward, traps)
        _record_sequence(backward, list(reversed(traps)))
        # Same path set, different edges: that is what makes this a
        # *path* map rather than a trap-set map.
        assert forward.paths == backward.paths
        assert bytes(forward.bits) != bytes(backward.bits)

    def test_begin_run_breaks_cross_run_edges(self):
        together = CoverageMap()
        _record_sequence(together, TRAPS_A)
        _record_sequence(together, TRAPS_B)  # begin_run between runs

        separate = CoverageMap()
        _record_sequence(separate, TRAPS_A)
        other = CoverageMap()
        _record_sequence(other, TRAPS_B)
        separate.union(other)

        # With chaining reset at the boundary, two runs in one map equal
        # the union of the runs recorded in separate maps: no phantom
        # edge from the last trap of run A into the first trap of run B.
        assert together.canonical_json() == separate.canonical_json()

    def test_chaining_is_per_hart(self):
        interleaved = CoverageMap()
        _record_sequence(interleaved, [
            (0, 9, False, 0x8000_0000, None),
            (1, 9, False, 0x8000_0000, None),
            (0, 7, True, 0x8000_0040, None),
        ])
        sequential = CoverageMap()
        _record_sequence(sequential, [
            (0, 9, False, 0x8000_0000, None),
            (0, 7, True, 0x8000_0040, None),
            (1, 9, False, 0x8000_0000, None),
        ])
        # Hart 1's trap between hart 0's two traps must not break hart
        # 0's edge: per-hart chains make SMP interleavings stable.
        assert interleaved.canonical_json() == sequential.canonical_json()


class TestUnion:
    def test_union_is_commutative_to_the_byte(self):
        a, b = CoverageMap(), CoverageMap()
        _record_sequence(a, TRAPS_A)
        _record_sequence(b, TRAPS_B)
        ab, ba = CoverageMap(), CoverageMap()
        _record_sequence(ab, TRAPS_A)
        other = CoverageMap()
        _record_sequence(other, TRAPS_B)
        ab.union(other)
        _record_sequence(ba, TRAPS_B)
        other2 = CoverageMap()
        _record_sequence(other2, TRAPS_A)
        ba.union(other2)
        assert ab.canonical_json() == ba.canonical_json()

    def test_absorb_reports_only_new_coverage(self):
        base = CoverageMap()
        _record_sequence(base, TRAPS_A)
        fresh = CoverageMap()
        _record_sequence(fresh, TRAPS_B)
        new_bits, new_paths = base.absorb(fresh)
        assert new_bits > 0 and new_paths == 2
        # Absorbing the same coverage again yields nothing new.
        again = CoverageMap()
        _record_sequence(again, TRAPS_B)
        assert base.absorb(again) == (0, 0)

    def test_absorb_equals_union_over_final_state(self):
        a, b = CoverageMap(), CoverageMap()
        _record_sequence(a, TRAPS_A)
        _record_sequence(b, TRAPS_B)
        absorbed = CoverageMap()
        _record_sequence(absorbed, TRAPS_A)
        absorbed.absorb(b)
        unioned = CoverageMap()
        _record_sequence(unioned, TRAPS_A)
        unioned.union(b)
        assert absorbed.canonical_json() == unioned.canonical_json()


class TestSerialization:
    def test_doc_round_trip_is_exact(self):
        cov = CoverageMap()
        _record_sequence(cov, TRAPS_A)
        clone = CoverageMap.from_doc(cov.to_doc())
        assert clone.canonical_json() == cov.canonical_json()
        assert clone.digest() == cov.digest()

    def test_doc_declares_schema_and_geometry(self):
        doc = CoverageMap().to_doc()
        assert doc["schema"] == COVERAGE_SCHEMA
        assert doc["map_bits"] == MAP_BITS
        assert doc["block_bits"] == BLOCK_BITS
        assert len(bytes.fromhex(doc["bits"])) == MAP_SIZE // 8

    def test_from_doc_rejects_wrong_schema(self):
        doc = CoverageMap().to_doc()
        doc["schema"] = "something-else"
        with pytest.raises(ValueError, match="schema"):
            CoverageMap.from_doc(doc)

    def test_from_doc_rejects_geometry_mismatch(self):
        doc = CoverageMap().to_doc()
        doc["map_bits"] = MAP_BITS + 1
        with pytest.raises(ValueError, match="geometry"):
            CoverageMap.from_doc(doc)

    def test_from_doc_rejects_truncated_bitmap(self):
        doc = CoverageMap().to_doc()
        doc["bits"] = doc["bits"][:-2]
        with pytest.raises(ValueError, match="length"):
            CoverageMap.from_doc(doc)


class TestReport:
    def test_trap_path_space_is_the_full_denominator(self):
        space = trap_path_space()
        assert len(space) == 60  # 3 worlds x (14 exceptions + 6 interrupts)
        assert {world for world, _ in space} == set(WORLD_KEYS)
        for world in WORLD_KEYS:
            assert sum(1 for w, _ in space if w == world) == 20

    def test_cause_key_folds_the_interrupt_bit(self):
        assert cause_key(7, False) == 7
        assert cause_key(7, True) == 0x107
        assert cause_key(7, True) != cause_key(7, False)

    def test_report_counts_match_paths(self):
        cov = CoverageMap()
        _record_sequence(cov, TRAPS_A)
        report = cov.report()
        assert report["records"] == len(TRAPS_A)
        assert report["paths"] == cov.path_count()
        assert report["pairs_total"] == 60
        assert report["pairs_covered"] == len(cov.covered_pairs())
        covered = sum(entry["covered"] for entry in report["worlds"].values())
        assert covered == report["pairs_covered"]
        assert sorted(report["worlds"]) == sorted(WORLD_KEYS)
