"""The guided scheduler: deterministic mutation, coverage-driven keeps.

Two runs with the same (seed, corpus) must keep byte-identical entries
and produce byte-identical coverage documents — that is what lets the
campaign runner shard guided fuzzing and still merge deterministically —
and mutation must be the only road to the extended action alphabet, so
existing seed decodes stay stable.
"""

from __future__ import annotations

import random

from repro.core.bugs import seeded
from repro.coverage import Corpus, mutate_steps, run_guided_fuzz
from repro.coverage.guided import GUIDED_NAMES, MAX_STEPS
from repro.verif.fuzz import (
    ACTIONS,
    EXTENDED_ACTIONS,
    Scenario,
    canonical_steps,
)

PARENT = (("read_time", 5), ("send_ipi", 1), ("compute", 300),
          ("set_timer", 60))
OTHER = (("misaligned_load", 3), ("putchar", 65))


class TestMutateSteps:
    def test_deterministic_in_the_rng(self):
        a = [mutate_steps(PARENT, random.Random(7), splice_with=OTHER)
             for _ in range(5)]
        b = [mutate_steps(PARENT, random.Random(7), splice_with=OTHER)
             for _ in range(5)]
        assert a != [PARENT] * 5  # it does mutate
        assert a == b

    def test_output_is_canonical(self):
        rng = random.Random(3)
        for _ in range(50):
            mutant = mutate_steps(PARENT, rng, splice_with=OTHER)
            assert mutant == canonical_steps(mutant)
            assert 0 < len(mutant) <= MAX_STEPS

    def test_length_is_capped(self):
        rng = random.Random(1)
        long_parent = tuple(("compute", i) for i in range(MAX_STEPS))
        for _ in range(40):
            mutant = mutate_steps(long_parent, rng, splice_with=long_parent)
            assert len(mutant) <= MAX_STEPS

    def test_empty_parent_produces_a_step(self):
        assert len(mutate_steps((), random.Random(0))) >= 1

    def test_guided_alphabet_includes_extended_actions(self):
        for name, _weight in EXTENDED_ACTIONS:
            assert name in GUIDED_NAMES

    def test_seed_decoder_alphabet_is_unchanged(self):
        # The blind decoder must not see the extended actions: adding
        # them to ACTIONS would silently remap every existing seed's
        # decode (findings, corpora, bundles all key on those decodes).
        base_names = {name for name, _weight in ACTIONS}
        for name, _weight in EXTENDED_ACTIONS:
            assert name not in base_names
        decoded = {action for action, _operand
                   in Scenario(seed=1234, length=200).actions()}
        assert decoded <= base_names


class TestGuidedRunDeterminism:
    def _run(self):
        return run_guided_fuzz(Corpus(), seed=11, cases=8, length=4,
                               wall_seconds=5.0)

    def test_same_seed_same_everything(self):
        a, b = self._run(), self._run()
        assert a.kept == b.kept
        assert a.executed == b.executed == 8
        assert a.coverage.canonical_json() == b.coverage.canonical_json()

    def test_kept_inputs_land_in_the_corpus(self):
        corpus = Corpus()
        result = run_guided_fuzz(corpus, seed=11, cases=8, length=4,
                                 wall_seconds=5.0)
        assert result.kept  # something always lights up an empty map
        for digest in result.kept:
            assert digest in corpus.entries
        origins = {corpus.entries[d]["origin"] for d in result.kept}
        assert origins <= {"guided-fresh", "guided-mutant"}

    def test_replay_pass_covers_the_whole_corpus(self):
        corpus = Corpus()
        corpus.add((("read_time", 1),))
        corpus.add((("compute", 400), ("send_ipi", 1)))
        result = run_guided_fuzz(corpus, seed=2, cases=1, length=4,
                                 wall_seconds=5.0)
        assert result.replayed == 2
        # The replay pass seeds the global map, so coverage the corpus
        # already has cannot be "new" for a mutant.
        assert result.coverage.records > 0


class TestGuidedReachesTheCanary:
    def test_guided_finds_the_seeded_ipi_hole(self):
        # The canary is only reachable through the extended alphabet
        # (a direct CLINT msip store), so blind decoding never finds it;
        # guided mutation does, at a deterministic case number.  The
        # pinned (seed, cases) pair is the same one BENCH_cov.json uses.
        with seeded("os_ipi_write_dropped"):
            result = run_guided_fuzz(Corpus(), seed=3, cases=16, length=4,
                                     wall_seconds=5.0)
        assert result.first_finding_case is not None
        assert result.first_finding_case <= 16
        finding = result.findings[0]
        assert "ssi" in finding.diff()
        assert any(action == "clint_access" for action, _ in finding.steps)
