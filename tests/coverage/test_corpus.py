"""The corpus: content-addressed, canonical, idempotent.

Entry identity is the digest of the canonical steps alone — provenance
never forks an entry — and a directory-backed corpus is a deterministic
function of its contents: same inputs, byte-identical directory, same
load order, no matter the discovery order.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.coverage import (
    CORPUS_SCHEMA,
    Corpus,
    entry_digest,
    entry_json,
    make_entry,
)
from repro.coverage.corpus import entry_filename

STEPS_A = (("read_time", 1), ("set_timer", 40))
STEPS_B = (("send_ipi", 3), ("compute", 500), ("misaligned_load", 7))


class TestEntries:
    def test_digest_covers_steps_only(self):
        plain = make_entry(STEPS_A)
        annotated = make_entry(STEPS_A, parent="abc", origin="guided-mutant",
                               new_bits=5, new_paths=2)
        assert entry_digest(plain) == entry_digest(annotated)
        assert entry_digest(plain) != entry_digest(make_entry(STEPS_B))

    def test_make_entry_canonicalizes(self):
        entry = make_entry([["read_time", (1 << 40) + 7]])  # JSON-ish input
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["steps"] == [["read_time", 7]]  # masked to 32 bits

    def test_make_entry_rejects_unknown_actions(self):
        with pytest.raises(ValueError, match="unknown"):
            make_entry([("warp_core_breach", 1)])

    def test_entry_json_is_byte_stable(self):
        entry = make_entry(STEPS_A, origin="manual")
        assert entry_json(entry) == entry_json(json.loads(entry_json(entry)))

    def test_filename_is_digest_derived(self):
        entry = make_entry(STEPS_A)
        assert entry_filename(entry) == f"cov-{entry_digest(entry)[:16]}.json"


class TestInMemoryCorpus:
    def test_add_is_idempotent(self):
        corpus = Corpus()
        first = corpus.add(STEPS_A, origin="manual")
        second = corpus.add(STEPS_A, origin="guided-mutant", new_bits=9)
        assert first == second
        assert len(corpus) == 1
        # First add wins: re-finding an input does not rewrite provenance.
        assert corpus.entries[first]["origin"] == "manual"

    def test_iteration_is_sorted_by_digest(self):
        corpus = Corpus()
        corpus.add(STEPS_B)
        corpus.add(STEPS_A)
        assert corpus.digests() == sorted(corpus.digests())
        assert [digest for digest, _ in corpus.iter_steps()] == corpus.digests()

    def test_steps_round_trip_as_canonical_tuples(self):
        corpus = Corpus()
        digest = corpus.add(STEPS_A)
        assert corpus.steps_of(digest) == STEPS_A

    def test_add_entry_validates(self):
        corpus = Corpus()
        good = make_entry(STEPS_A)
        assert corpus.add_entry(good) == entry_digest(good)
        bad = dict(good, steps=[["read_time", 1 << 40]])  # non-canonical
        with pytest.raises(ValueError, match="canonical"):
            corpus.add_entry(bad)
        with pytest.raises(ValueError, match=CORPUS_SCHEMA):
            corpus.add_entry({"steps": []})


class TestDirectoryCorpus:
    def test_write_through_and_reload(self, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus(root)
        digest_a = corpus.add(STEPS_A, origin="guided-fresh")
        digest_b = corpus.add(STEPS_B, parent=digest_a,
                              origin="guided-mutant")
        reloaded = Corpus(root)
        assert reloaded.digests() == sorted([digest_a, digest_b])
        assert reloaded.entries == corpus.entries
        assert reloaded.steps_of(digest_b) == STEPS_B

    def test_same_contents_byte_identical_directories(self, tmp_path):
        one, two = str(tmp_path / "one"), str(tmp_path / "two")
        a = Corpus(one)
        a.add(STEPS_A)
        a.add(STEPS_B)
        b = Corpus(two)
        b.add(STEPS_B)  # opposite discovery order
        b.add(STEPS_A)
        files_one = sorted(os.listdir(one))
        assert files_one == sorted(os.listdir(two))
        for name in files_one:
            with open(os.path.join(one, name), "rb") as f1, \
                    open(os.path.join(two, name), "rb") as f2:
                assert f1.read() == f2.read()

    def test_load_ignores_foreign_files(self, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus(root)
        corpus.add(STEPS_A)
        (tmp_path / "corpus" / "README.txt").write_text("not an entry\n")
        assert len(Corpus(root)) == 1

    def test_load_rejects_corrupt_entries(self, tmp_path):
        root = str(tmp_path / "corpus")
        Corpus(root).add(STEPS_A)
        bad = os.path.join(root, "cov-0000000000000000.json")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": CORPUS_SCHEMA,
                                     "steps": [["no_such_action", 0]]}))
        with pytest.raises(ValueError, match="cov-0000000000000000"):
            Corpus(root)
