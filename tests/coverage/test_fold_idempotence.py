"""Coverage fold-back idempotence (S3 of the snapshot PR).

A corpus entry's coverage can reach an aggregate map along several
routes: the guided fuzzer's replay pass, a second guided run over the
same corpus, and every covfuzz campaign cell that replays the shared
corpus before mutating.  The bitmap and path set union idempotently by
construction, but ``records`` was a plain sum — every re-fold of the
same entry inflated it, so merged reports counted the same traps once
per cell.  Folds are now attributed to a source digest and deduplicated.
"""

from repro.coverage import Corpus, CoverageMap, run_guided_fuzz
from repro.coverage.corpus import steps_digest
from repro.verif.fuzz import Scenario, canonical_steps

STEPS = canonical_steps(Scenario(seed=7, length=4).actions())


def _case_map(marker: int = 0) -> CoverageMap:
    cov = CoverageMap()
    cov.begin_run()
    cov.record(0, 8, False, 0x8000_0000 + marker * 16, None)
    cov.record(0, 9, False, 0x8000_0100, None)
    return cov


class TestSourcedAbsorb:
    def test_absorbing_same_source_twice_is_idempotent(self):
        aggregate = CoverageMap()
        source = steps_digest(STEPS)
        aggregate.absorb(_case_map(), source=source)
        records = aggregate.records
        new_bits, new_paths = aggregate.absorb(_case_map(), source=source)
        assert (new_bits, new_paths) == (0, 0)
        assert aggregate.records == records

    def test_unsourced_absorb_still_accumulates(self):
        aggregate = CoverageMap()
        aggregate.absorb(_case_map())
        aggregate.absorb(_case_map())
        assert aggregate.records == 4

    def test_union_dedupes_shared_sources(self):
        # Two campaign cells each replayed the same corpus entry before
        # mutating: the shared source must be counted once in the merge.
        source = steps_digest(STEPS)
        cell_a, cell_b = CoverageMap(), CoverageMap()
        cell_a.absorb(_case_map(), source=source)
        cell_b.absorb(_case_map(), source=source)
        cell_a.absorb(_case_map(1), source="other-" + source)
        merged = CoverageMap()
        merged.union(cell_a)
        merged.union(cell_b)
        assert merged.records == cell_a.records
        assert merged.records == 4

    def test_sources_round_trip_through_doc(self):
        source = steps_digest(STEPS)
        cov = CoverageMap()
        cov.absorb(_case_map(), source=source)
        cov.absorb(_case_map(1))
        restored = CoverageMap.from_doc(cov.to_doc())
        assert restored.records == cov.records
        assert restored.digest() == cov.digest()
        # The restored map still refuses to re-fold the same source.
        assert restored.absorb(_case_map(), source=source) == (0, 0)
        assert restored.records == cov.records

    def test_unsourced_doc_back_compat(self):
        cov = CoverageMap()
        cov.absorb(_case_map())
        doc = cov.to_doc()
        assert "sources" not in doc
        restored = CoverageMap.from_doc(doc)
        assert restored.records == 2


class TestGuidedFoldIdempotence:
    def test_second_guided_run_does_not_inflate_records(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        corpus.add(STEPS, origin="seed")
        first = run_guided_fuzz(corpus, seed=3, cases=4, length=4)
        # Replaying the grown corpus again attributes every entry by
        # digest; a mutation that reproduces a kept entry folds to zero.
        second = run_guided_fuzz(corpus, seed=3, cases=0, length=4)
        replay_records = second.coverage.records
        third = run_guided_fuzz(corpus, seed=3, cases=0, length=4)
        assert third.coverage.records == replay_records
        assert first.coverage.records >= replay_records
        for digest in corpus.digests():
            assert digest in second.coverage.source_records
