"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.spec.platform import PREMIER_P550, QEMU_VIRT, RVA23_MACHINE, VISIONFIVE2


@pytest.fixture
def vf2():
    return VISIONFIVE2


@pytest.fixture
def p550():
    return PREMIER_P550


@pytest.fixture
def qemu():
    return QEMU_VIRT


@pytest.fixture
def rva23():
    return RVA23_MACHINE


@pytest.fixture(params=["visionfive2", "premier-p550"], ids=["vf2", "p550"])
def platform(request):
    """Both evaluation platforms of the paper (Table 3)."""
    return {"visionfive2": VISIONFIVE2, "premier-p550": PREMIER_P550}[request.param]


@pytest.fixture
def machine(vf2):
    from repro.hart.machine import Machine

    return Machine(vf2)


@pytest.fixture
def spec_state(vf2):
    from repro.spec.state import MachineState

    return MachineState(vf2)
