"""Workload generators and the boot-flow model."""

import pytest

from repro.os_model.bootflow import BOOT_PHASES, DOMINANT_CAUSES, run_boot_flow
from repro.os_model.workloads import (
    APPLICATION_MIXES,
    COREMARK_PRO,
    COREMARK_PRO_SUITE,
    MEMCACHED,
    REDIS,
    RV8_SUITE,
    TrapMix,
    run_compute_workload,
    run_trap_mix,
)
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized


class TestTrapMix:
    def test_total_rate(self):
        mix = TrapMix("t", time_reads_per_s=100, ipis_per_s=50)
        assert mix.total_rate == 150

    def test_paper_rates(self):
        """The rates from §8.3.2/§8.3.3 are encoded in the profiles."""
        assert 10_000 <= COREMARK_PRO.total_rate <= 12_000  # "11k/s"
        assert 380_000 <= MEMCACHED.total_rate <= 396_000  # "388k trap/s"
        assert 265_000 <= REDIS.total_rate <= 280_000  # "272k trap/s"

    def test_zero_rate_rejected(self):
        def workload(kernel, ctx):
            run_trap_mix(kernel, ctx, TrapMix("empty"), operations=1)

        system = build_native(VISIONFIVE2, workload=workload)
        with pytest.raises(ValueError):
            system.run()

    def test_suite_membership(self):
        assert len(COREMARK_PRO_SUITE) == 9  # the CoreMark-Pro sub-benchmarks
        assert set(APPLICATION_MIXES) == {"redis", "memcached", "mysql", "gcc"}
        assert len(RV8_SUITE) == 8


class TestRunTrapMix:
    def _run(self, mix, operations=60, virtualized=False, **kwargs):
        box = {}

        def workload(kernel, ctx):
            box["result"] = run_trap_mix(kernel, ctx, mix,
                                         operations=operations, **kwargs)

        builder = build_virtualized if virtualized else build_native
        system = builder(VISIONFIVE2, workload=workload)
        system.run()
        return system, box["result"]

    def test_operations_counted(self):
        _, result = self._run(COREMARK_PRO)
        assert result.operations == 60
        assert result.useful_instructions > 0
        assert result.simulated_seconds > 0

    def test_trap_rate_matches_mix(self):
        system, result = self._run(COREMARK_PRO, operations=120)
        achieved = result.operations / result.simulated_seconds
        # Within 2x of the nominal rate (overheads shift it slightly).
        assert COREMARK_PRO.total_rate / 2 <= achieved <= COREMARK_PRO.total_rate * 2

    def test_event_mix_proportions(self):
        system, result = self._run(COREMARK_PRO, operations=120)
        details = system.machine.stats.detail_counts()
        time_reads = details.get("emulate:time-read", 0)
        # time reads dominate the CPU mix (7k of 11k)
        assert time_reads >= 120 * 0.5

    def test_latencies_recorded(self):
        _, result = self._run(COREMARK_PRO, record_latencies=True)
        assert len(result.op_latencies_ns) == 60
        assert all(lat >= 0 for lat in result.op_latencies_ns)

    def test_throughput_helper(self):
        _, result = self._run(COREMARK_PRO)
        assert result.throughput(VISIONFIVE2.frequency_hz) > 0

    def test_works_virtualized(self):
        system, result = self._run(REDIS, virtualized=True)
        assert result.operations == 60
        assert system.miralis.offload.hits  # fast paths were used


class TestComputeWorkload:
    def test_runs_to_completion(self):
        box = {}

        def workload(kernel, ctx):
            box["result"] = run_compute_workload(kernel, ctx, 200_000)

        system = build_native(VISIONFIVE2, workload=workload)
        system.run()
        assert box["result"].useful_instructions == 200_000


class TestBootFlow:
    def test_phases_cover_48_seconds(self):
        assert sum(phase.duration_s for phase in BOOT_PHASES) == 48.0

    def test_boot_statistics(self):
        box = {}

        def workload(kernel, ctx):
            box["result"] = run_boot_flow(kernel, ctx, scale=0.004)

        system = build_native(VISIONFIVE2, workload=workload)
        system.run()
        result = box["result"]
        assert result.phases == ["bootloader", "kernel-init", "services", "idle"]
        assert result.total_traps > 50
        # §3.4: thousands of traps per second during boot.
        assert result.trap_rate_per_s > 1_000

    def test_dominant_causes_cover_nearly_all_traps(self):
        """Figure 3: five causes account for ~99.98% of traps."""
        def workload(kernel, ctx):
            run_boot_flow(kernel, ctx, scale=0.004)

        system = build_native(VISIONFIVE2, workload=workload)
        system.run()
        details = system.machine.stats.detail_counts()
        dominant = sum(
            count for detail, count in details.items()
            if any(cause in detail for cause in
                   ("time-read", "sbi:timer", "sbi:ipi", "sbi:rfence",
                    "misaligned", "irq:"))
        )
        total = sum(details.values())
        assert dominant / total > 0.98

    def test_offload_slashes_world_switches(self):
        """§3.4: offload cuts boot world switches to ~1/s."""
        def workload(kernel, ctx):
            run_boot_flow(kernel, ctx, scale=0.004)

        with_offload = build_virtualized(VISIONFIVE2, workload=workload)
        with_offload.run()
        without = build_virtualized(VISIONFIVE2, workload=workload,
                                    offload=False)
        without.run()
        assert with_offload.machine.stats.world_switches < \
            without.machine.stats.world_switches / 20
