"""Every shipped example must run to completion (they are executable docs)."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 7
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"


def test_quickstart_shows_both_deployments(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Native deployment" in out
    assert "Miralis deployment" in out
    assert "fast-path hits" in out


def test_sandbox_demo_shows_containment(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "sandbox_demo.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "full compromise" in out
    assert "contained" in out
