"""SBI types, constants, and the sandbox register registry."""

import pytest

from repro.sbi import constants as sbi
from repro.sbi.spec_registry import (
    A0,
    A6,
    A7,
    ALWAYS_READ,
    ALWAYS_WRITE,
    all_signatures,
    allowed_read_registers,
    allowed_write_registers,
    signature_for,
)
from repro.sbi.types import SbiCall, SbiRet


class TestSbiCall:
    def test_from_regs(self):
        regs = [0] * 32
        regs[17] = sbi.EXT_TIMER
        regs[16] = sbi.FN_TIMER_SET_TIMER
        regs[10] = 12345
        call = SbiCall.from_regs(regs)
        assert call.eid == sbi.EXT_TIMER
        assert call.fid == sbi.FN_TIMER_SET_TIMER
        assert call.arg(0) == 12345

    def test_arg_out_of_range_is_zero(self):
        call = SbiCall(eid=1, fid=0, args=(1, 2))
        assert call.arg(5) == 0

    def test_name_known_extension(self):
        assert SbiCall(sbi.EXT_TIMER, 0).name == "timer.0"

    def test_name_unknown_extension(self):
        assert "ext:0x999" in SbiCall(0x999, 0).name


class TestSbiRet:
    def test_success(self):
        ret = SbiRet.success(7)
        assert ret.is_success and ret.value == 7

    def test_failure(self):
        ret = SbiRet.failure(sbi.SbiError.ERR_NOT_SUPPORTED)
        assert not ret.is_success

    def test_to_u64_wraps_negative_error(self):
        error, _ = SbiRet.failure(sbi.SbiError.ERR_DENIED).to_u64()
        assert error == ((-4) & ((1 << 64) - 1))


class TestRegistry:
    def test_set_timer_signature(self):
        signature = signature_for(sbi.EXT_TIMER, sbi.FN_TIMER_SET_TIMER)
        assert signature.num_args == 1
        assert signature.readable == ALWAYS_READ | {A0}

    def test_send_ipi_takes_two_args(self):
        signature = signature_for(sbi.EXT_IPI, sbi.FN_IPI_SEND_IPI)
        assert signature.num_args == 2

    def test_legacy_ignores_fid(self):
        assert signature_for(sbi.LEGACY_SET_TIMER, 99) is not None

    def test_unknown_call_returns_none(self):
        assert signature_for(0x12345678, 0) is None

    def test_unknown_call_gets_minimum_read_set(self):
        """Unrecognized vendor extensions must not expose OS registers."""
        assert allowed_read_registers(0x12345678, 0) == frozenset({A6, A7})

    def test_writable_always_just_results(self):
        for signature in all_signatures():
            assert allowed_write_registers(signature.eid, signature.fid) == \
                ALWAYS_WRITE

    def test_no_signature_reads_callee_saved(self):
        """The allow-list never exposes s-registers (kernel pointers)."""
        callee_saved = {8, 9} | set(range(18, 28))
        for signature in all_signatures():
            assert not signature.readable & callee_saved

    def test_read_set_bounded_by_arguments(self):
        for signature in all_signatures():
            assert signature.readable <= ALWAYS_READ | set(range(A0, A0 + 6))

    def test_every_standard_extension_covered(self):
        covered = {signature.eid for signature in all_signatures()}
        for eid in (sbi.EXT_BASE, sbi.EXT_TIMER, sbi.EXT_IPI, sbi.EXT_RFENCE,
                    sbi.EXT_HSM, sbi.EXT_SRST, sbi.EXT_DBCN):
            assert eid in covered
