"""Replay determinism and the ddmin shrinker.

The two load-bearing guarantees:

* ``replay_bundle`` re-executes a bundle and *matches* only on a
  byte-for-byte signature digest match;
* ``shrink_bundle`` reduces the padded 8-site plan to its 1-minimal
  core — the single mtvec-smash spec — while preserving the original
  signature exactly, batching candidate replays through the campaign
  pool.
"""

import copy
import json

import pytest

from repro.faults.chaos import run_chaos
from repro.triage.bundle import bundle_from_chaos, canonical_bundle_json
from repro.triage.replay import replay_bundle
from repro.triage.shrink import ddmin, shrink_bundle


@pytest.fixture(scope="module")
def chaos_bundle():
    result = run_chaos("opensbi", plan="padded-mtvec", seed=3)
    assert result.quarantined
    # Round-trip through JSON first: replay must work from a file's
    # worth of data, not live Python objects.
    return json.loads(canonical_bundle_json(
        bundle_from_chaos(result, platform="visionfive2")))


class TestReplay:
    def test_replay_reproduces_signature(self, chaos_bundle):
        replay = replay_bundle(chaos_bundle)
        assert replay.matches
        assert (replay.replayed["digest"]
                == chaos_bundle["signature"]["digest"])

    def test_tampered_bundle_mismatches(self, chaos_bundle):
        # Flip the stored digest: the replayed signature is honest, so
        # the comparison must fail (exit-nonzero path in the CLI).
        tampered = copy.deepcopy(chaos_bundle)
        tampered["signature"]["digest"] = "0" * 64
        replay = replay_bundle(tampered)
        assert not replay.matches

    def test_different_plan_mismatches(self, chaos_bundle):
        # Drop the one spec that matters: the run goes clean, the fresh
        # signature differs, replay reports a mismatch.
        edited = copy.deepcopy(chaos_bundle)
        edited["fault_plan"]["specs"] = [
            spec for spec in edited["fault_plan"]["specs"]
            if spec.get("site") != "vcsr-write"
        ]
        replay = replay_bundle(edited)
        assert not replay.matches

    def test_unknown_kind_rejected(self, chaos_bundle):
        bad = copy.deepcopy(chaos_bundle)
        bad["kind"] = "mystery"
        with pytest.raises(ValueError, match="mystery"):
            replay_bundle(bad)

    def test_fuzz_replay_roundtrip(self):
        # A synthetic fuzz bundle with explicit steps must replay those
        # steps; identical runs on both deployments -> no divergence ->
        # sentinel signature -> mismatch against any stored failure.
        from repro.triage.bundle import BUNDLE_SCHEMA
        from repro.triage.signature import signature_from_material

        bundle = {
            "schema": BUNDLE_SCHEMA, "kind": "fuzz", "source": "test",
            "config": {"platform": "visionfive2", "length": 3,
                       "offload": True},
            "seeds": {"seed": 1},
            "workload": {"steps": [["compute", 10], ["read_time", 0]],
                         "explicit_steps": True},
            "failure": {},
            "signature": signature_from_material({"kind": "fuzz",
                                                  "diff_fields": ["ssi"]}),
        }
        replay = replay_bundle(bundle)
        assert not replay.matches
        assert replay.replayed["material"].get("clean") is True


class TestDdmin:
    """Algorithm-level properties, with a cheap synthetic predicate."""

    @staticmethod
    def _batched(predicate):
        return lambda candidates: [predicate(c) for c in candidates]

    def test_single_culprit(self):
        items = list(range(16))
        minimal, _rounds, _tested = ddmin(
            items, self._batched(lambda subset: 7 in subset))
        assert minimal == [7]

    def test_pair_culprit_is_one_minimal(self):
        # Failure needs BOTH 2 and 11: ddmin must keep exactly those.
        minimal, _rounds, _tested = ddmin(
            list(range(12)),
            self._batched(lambda s: 2 in s and 11 in s))
        assert minimal == [2, 11]

    def test_everything_required(self):
        items = [0, 1, 2]
        minimal, _r, _t = ddmin(
            items, self._batched(lambda s: len(s) == 3))
        assert minimal == items

    def test_empty_and_singleton_pass_through(self):
        assert ddmin([], self._batched(lambda s: True))[0] == []
        assert ddmin([5], self._batched(lambda s: True))[0] == [5]

    def test_order_preserved(self):
        minimal, _r, _t = ddmin(
            ["a", "b", "c", "d"],
            self._batched(lambda s: "b" in s and "d" in s))
        assert minimal == ["b", "d"]


class TestShrinkBundle:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_padded_plan_shrinks_to_minimal_core(self, chaos_bundle,
                                                 workers):
        outcome = shrink_bundle(chaos_bundle, workers=workers,
                                timeout=60.0)
        assert outcome.original_count == 8
        assert outcome.shrunk_count == 1
        spec = outcome.bundle["fault_plan"]["specs"][0]
        assert spec["site"] == "vcsr-write"  # the mtvec-smash core
        assert outcome.bundle["shrink"]["original_count"] == 8
        # The shrunk bundle still replays to the original signature.
        assert (outcome.bundle["signature"]["digest"]
                == chaos_bundle["signature"]["digest"])
        replay = replay_bundle(outcome.bundle)
        assert replay.matches

    def test_unshrinkable_bundle_passes_through(self, chaos_bundle):
        single = copy.deepcopy(chaos_bundle)
        single["fault_plan"]["specs"] = single["fault_plan"]["specs"][:1]
        outcome = shrink_bundle(single, workers=1)
        assert not outcome.changed
        assert outcome.candidates_tested == 0
