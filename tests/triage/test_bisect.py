"""Prefix bisection: O(log n) probes, verified boundary.

Algorithm-level properties run against a synthetic probe (no simulation);
the integration test plants a deterministic fast-path divergence and
bisects a *real* fuzz bundle through ``fuzz_scenario`` replays.
"""

import math

import pytest

from repro.triage.bisect import bisect_divergence
from repro.triage.bundle import BUNDLE_SCHEMA
from repro.triage.signature import signature_from_material


def _synthetic_bundle(length=40):
    return {
        "schema": BUNDLE_SCHEMA, "kind": "fuzz", "source": "test",
        "config": {"platform": "visionfive2", "length": length,
                   "offload": True},
        "seeds": {"seed": 0},
        "workload": {"steps": [["compute", index] for index in range(length)],
                     "explicit_steps": True},
        "failure": {},
        "signature": signature_from_material({"kind": "fuzz",
                                              "diff_fields": ["ssi"]}),
    }


class CountingProbe:
    def __init__(self, diverges_at):
        self.diverges_at = diverges_at
        self.calls = 0

    def __call__(self, prefix):
        self.calls += 1
        return len(prefix) >= self.diverges_at


class TestBisectAlgorithm:
    def test_finds_the_minimal_diverging_prefix(self):
        bundle = _synthetic_bundle(40)
        probe = CountingProbe(diverges_at=23)
        result = bisect_divergence(bundle, probe=probe)
        assert result.reproduced
        assert result.prefix_len == 23
        assert result.culprit == ["compute", 22]
        assert len(result.steps) == 23

    def test_probe_count_is_logarithmic(self):
        length = 256
        bundle = _synthetic_bundle(length)
        probe = CountingProbe(diverges_at=200)
        result = bisect_divergence(bundle, probe=probe)
        assert result.prefix_len == 200
        # Full probe + empty probe + one per halving, memoized.
        assert result.probes <= math.ceil(math.log2(length)) + 2
        assert probe.calls == result.probes

    def test_empty_prefix_divergence_blames_the_boot(self):
        result = bisect_divergence(_synthetic_bundle(8),
                                   probe=CountingProbe(diverges_at=0))
        assert result.reproduced
        assert result.prefix_len == 0
        assert result.culprit is None
        assert result.probes == 2  # full, then empty
        assert "boot" in result.report()

    def test_non_reproducing_bundle_is_reported_not_searched(self):
        probe = CountingProbe(diverges_at=10 ** 9)
        result = bisect_divergence(_synthetic_bundle(64), probe=probe)
        assert not result.reproduced
        assert result.prefix_len is None
        assert probe.calls == 1  # only the full-input probe
        assert "does not reproduce" in result.report()

    def test_single_step_input(self):
        result = bisect_divergence(_synthetic_bundle(1),
                                   probe=CountingProbe(diverges_at=1))
        assert result.prefix_len == 1
        assert result.culprit == ["compute", 0]

    def test_only_fuzz_bundles_are_bisectable(self):
        bundle = _synthetic_bundle(4)
        bundle["kind"] = "chaos"
        with pytest.raises(ValueError, match="chaos"):
            bisect_divergence(bundle)


class TestBisectRealReplay:
    def test_bisects_a_planted_fastpath_divergence(self, monkeypatch):
        """End-to-end: a broken fast path makes real seeds diverge; the
        default probe replays step prefixes and pins the culprit."""
        from repro.core.offload import FastPath
        from repro.sbi.types import SbiRet
        from repro.triage.bundle import bundle_from_fuzz
        from repro.verif.fuzz import fuzz_scenario

        # Break a fast path the boot itself never takes (the boot does
        # arm timers, so a broken set_timer would diverge at prefix 0):
        # only an explicit send_ipi step reaches this.
        def broken_send_ipi(self, hart, vctx, hart_mask, mask_base):
            hart.charge(10)
            return SbiRet.success(0xBAD)  # wrong: value must be 0

        monkeypatch.setattr(FastPath, "_sbi_send_ipi", broken_send_ipi)

        finding = next(
            finding for seed in range(8)
            if (finding := fuzz_scenario(seed, length=30)) is not None)
        bundle = bundle_from_fuzz(finding, platform="visionfive2", length=30)

        result = bisect_divergence(bundle)
        assert result.reproduced
        assert 0 < result.prefix_len <= result.total_steps
        assert result.probes <= math.ceil(math.log2(result.total_steps)) + 2
        # The boundary really is a boundary: the minimal prefix diverges,
        # one step shorter does not.
        probe = lambda steps: fuzz_scenario(
            bundle["seeds"]["seed"], length=30,
            steps=[tuple(step) for step in steps]) is not None
        assert probe(result.steps)
        assert not probe(result.steps[:-1])
