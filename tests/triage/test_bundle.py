"""Repro-bundle capture: self-contained, canonical, round-trippable."""

import json

import pytest

from repro.faults.chaos import run_chaos
from repro.triage.bundle import (
    BUNDLE_SCHEMA,
    bundle_filename,
    bundle_from_chaos,
    bundle_from_fuzz,
    bundle_from_verif,
    canonical_bundle_json,
    load_bundle,
    save_bundle,
    validate_bundle,
)


@pytest.fixture(scope="module")
def quarantine_result():
    # padded-mtvec deterministically smashes mtvec on the first write:
    # the watchdog detects the bad vector, retries, then quarantines.
    result = run_chaos("opensbi", plan="padded-mtvec", seed=3)
    assert result.quarantined
    return result


class TestChaosBundle:
    def test_bundle_is_self_contained(self, quarantine_result):
        bundle = bundle_from_chaos(quarantine_result,
                                   platform="visionfive2")
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["kind"] == "chaos"
        # Everything replay needs, without registry access:
        assert bundle["config"]["firmware"] == "opensbi"
        assert bundle["config"]["platform"] == "visionfive2"
        assert bundle["seeds"]["seed"] == 3
        assert len(bundle["fault_plan"]["specs"]) == 8
        assert bundle["failure"]["quarantined"] is True
        assert bundle["failure"]["quarantine_log"]
        assert bundle["trap_log_tail"]
        assert bundle["signature"]["digest"]

    def test_bundle_json_round_trip(self, quarantine_result, tmp_path):
        bundle = bundle_from_chaos(quarantine_result,
                                   platform="visionfive2")
        path = str(tmp_path / "bundle.json")
        save_bundle(bundle, path)
        loaded = load_bundle(path)
        assert loaded["signature"] == json.loads(
            canonical_bundle_json(bundle))["signature"]
        # Canonical serialization is stable through a round trip.
        assert canonical_bundle_json(loaded) == canonical_bundle_json(
            json.loads(canonical_bundle_json(bundle)))

    def test_capture_is_deterministic(self, quarantine_result):
        rerun = run_chaos("opensbi", plan="padded-mtvec", seed=3)
        a = canonical_bundle_json(
            bundle_from_chaos(quarantine_result, platform="visionfive2"))
        b = canonical_bundle_json(
            bundle_from_chaos(rerun, platform="visionfive2"))
        assert a == b

    def test_unresolved_plan_still_bundles(self):
        result = run_chaos("opensbi", plan="no-such-plan", seed=0)
        assert result.error is not None and not result.ok
        bundle = bundle_from_chaos(result, platform="visionfive2")
        assert bundle["fault_plan"]["specs"] is None
        assert bundle["fault_plan"]["unresolved"] == "no-such-plan"
        assert bundle["signature"]["material"]["cause"]

    def test_tracer_tail_embedded(self):
        from repro.trace import Tracer

        tracer = Tracer()
        result = run_chaos("opensbi", plan="padded-mtvec", seed=3,
                           tracer=tracer)
        bundle = bundle_from_chaos(result, platform="visionfive2",
                                   tracer=tracer)
        assert bundle["trace_tail"]
        assert all(len(event) == 6 for event in bundle["trace_tail"])


class TestFuzzAndVerifBundles:
    def test_fuzz_bundle_embeds_decoded_input(self):
        from repro.verif.fuzz import FuzzFinding, Scenario

        finding = FuzzFinding(
            scenario=Scenario(seed=11, length=5),
            offload=True,
            native={"ssi": 1, "crashed": None},
            virtualized={"ssi": 0, "crashed": None},
        )
        bundle = bundle_from_fuzz(finding, platform="visionfive2", length=5)
        assert bundle["kind"] == "fuzz"
        assert bundle["seeds"]["seed"] == 11
        # The generated input, decoded: exactly what Scenario(11,5) does.
        assert bundle["workload"]["steps"] == [
            [action, operand]
            for action, operand in Scenario(seed=11, length=5).actions()
        ]
        assert bundle["workload"]["explicit_steps"] is False
        assert bundle["failure"]["diff"]["ssi"] == ["1", "0"]

    def test_verif_bundle(self):
        doc = {"task": "faithful-emulation", "inputs_checked": 12,
               "divergences": [{"check": "csr", "field": "mstatus",
                               "expected": 1, "actual": 2,
                               "context": "i0"}]}
        bundle = bundle_from_verif(
            doc, platform="visionfive2",
            params={"subspace": "emulation", "states": 4,
                    "start": 0, "stop": 4},
        )
        assert bundle["kind"] == "verif"
        assert bundle["config"]["subspace"] == "emulation"
        assert bundle["workload"]["start"] == 0
        assert bundle["failure"]["task"] == "faithful-emulation"


class TestValidation:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bundle({"schema": "something-else", "kind": "chaos",
                             "config": {}, "signature": {}})

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing"):
            validate_bundle({"schema": BUNDLE_SCHEMA, "kind": "chaos"})

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            validate_bundle([1, 2, 3])

    def test_filename_is_signature_derived(self, quarantine_result):
        bundle = bundle_from_chaos(quarantine_result,
                                   platform="visionfive2")
        name = bundle_filename(bundle)
        assert name.startswith("repro-chaos-")
        assert bundle["signature"]["digest"][:12] in name
