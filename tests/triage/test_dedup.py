"""Signature-based failure deduplication in campaign aggregates."""

import pytest

from repro.campaign import (
    CampaignCell,
    canonical_json,
    merge_campaign,
    register_family,
    run_campaign,
)
from repro.campaign.runner import CellResult, CampaignResult
from repro.triage.dedup import group_failures, summarize_groups
from repro.triage.signature import signature_from_material


def _cell_result(key, status="fail", family="chaos", error=None,
                 payload=None):
    return CellResult(key=key, family=family, status=status,
                      error=error, payload=payload or {})


def _bundle(digest_material):
    return {"signature": signature_from_material(digest_material)}


class TestGroupFailures:
    def test_ok_cells_are_ignored(self):
        groups = group_failures([_cell_result("a", status="ok")])
        assert groups == []

    def test_bundled_failures_group_by_signature(self):
        same = {"kind": "chaos", "cause": "bad vector"}
        other = {"kind": "chaos", "cause": "fault loop"}
        groups = group_failures([
            _cell_result("c1", payload={"bundle": _bundle(same)}),
            _cell_result("c2", payload={"bundle": _bundle(same)}),
            _cell_result("c3", payload={"bundle": _bundle(other)}),
        ])
        assert len(groups) == 2
        by_count = sorted(groups, key=lambda g: -g["count"])
        assert by_count[0]["count"] == 2
        assert by_count[0]["cells"] == ["c1", "c2"]

    def test_bundleless_failures_use_fallback_signature(self):
        # Forty identical tracebacks at different addresses are one bug.
        groups = group_failures([
            _cell_result(f"c{i}", status="error",
                         error=f"RuntimeError: bad read {i * 4096:#x}")
            for i in range(5)
        ])
        assert len(groups) == 1
        assert groups[0]["count"] == 5

    def test_fuzz_cell_contributes_per_finding(self):
        payload = {"findings": [
            {"seed": 1, "bundle": _bundle({"kind": "fuzz", "d": ["ssi"]})},
            {"seed": 2, "bundle": _bundle({"kind": "fuzz", "d": ["ssi"]})},
            {"seed": 3, "bundle": _bundle({"kind": "fuzz", "d": ["mem"]})},
        ]}
        groups = group_failures([_cell_result("f1", payload=payload)])
        assert sorted(group["count"] for group in groups) == [1, 2]

    def test_groups_sorted_by_digest(self):
        groups = group_failures([
            _cell_result(f"c{i}", payload={"bundle": _bundle({"n": i})})
            for i in range(6)
        ])
        digests = [group["signature"] for group in groups]
        assert digests == sorted(digests)

    def test_summary_line(self):
        groups = group_failures([
            _cell_result("c1", payload={"bundle": _bundle({"n": 1})}),
            _cell_result("c2", payload={"bundle": _bundle({"n": 1})}),
            _cell_result("c3", payload={"bundle": _bundle({"n": 2})}),
        ])
        assert summarize_groups(groups) == \
            "2 distinct failures x 3 occurrences"
        assert summarize_groups([]) == "no failures"


def _failing_family(params):
    index = params["i"]
    if index % 3 == 0:
        raise RuntimeError(f"boom at {index * 4096:#x}")
    if index % 3 == 1:
        return "fail", {"bundle": {
            "signature": signature_from_material(
                {"kind": "synthetic", "cause": "checkpoint missed"})}}
    return "ok", {}


class TestAggregateDeterminism:
    """The deduped aggregate is part of the canonical document: it must
    be byte-identical at any worker count."""

    def test_canonical_identical_at_1_2_4_workers(self):
        register_family("triage-dedup-test", _failing_family)
        cells = [CampaignCell.make("triage-dedup-test",
                                   f"tdt:{index:03d}", i=index)
                 for index in range(12)]
        documents = {
            workers: canonical_json(merge_campaign(
                run_campaign(cells, workers=workers)))
            for workers in (1, 2, 4)
        }
        assert documents[1] == documents[2] == documents[4]

    def test_aggregate_carries_failure_groups(self):
        register_family("triage-dedup-test", _failing_family)
        cells = [CampaignCell.make("triage-dedup-test",
                                   f"tdt:{index:03d}", i=index)
                 for index in range(12)]
        aggregate = merge_campaign(run_campaign(cells, workers=2))
        groups = aggregate["failure_groups"]
        # 12 cells -> 4 errors (one group: addresses normalize away)
        # + 4 fails (one bundled group) + 4 ok.
        assert len(groups) == 2
        assert sum(group["count"] for group in groups) == 8

    def test_chaos_quarantine_bundles_flow_into_aggregate(self):
        from repro.campaign import chaos_cells

        cells = chaos_cells(firmwares=("opensbi",),
                            plans=("padded-mtvec",), seeds=(3,))
        campaign = run_campaign(cells, workers=1)
        [result] = campaign.results
        # Quarantine counts as ok under the chaos contract, but the cell
        # still captures a bundle (the deterministic failure source).
        assert result.status == "ok"
        assert result.payload["quarantined"]
        assert result.payload["bundle"]["kind"] == "chaos"
        assert result.payload["bundle"]["signature"]["digest"]

    def test_interrupted_lives_under_timing(self):
        # Whether a run was ^C'd is per-run nondeterminism: it must not
        # perturb the canonical aggregate bytes.
        results = [_cell_result("a", status="ok")]
        calm = merge_campaign(CampaignResult(results=list(results),
                                             workers=1))
        rushed = merge_campaign(CampaignResult(results=list(results),
                                               workers=1,
                                               interrupted=True))
        assert calm["timing"]["interrupted"] is False
        assert rushed["timing"]["interrupted"] is True
        assert canonical_json(calm) == canonical_json(rushed)


assert pytest is not None
