"""Failure-signature semantics: stable identity, timing-free material."""

import pytest

from repro.triage.signature import (
    SIGNATURE_ALGO,
    canonical_material_json,
    cell_fallback_material,
    chaos_material,
    fuzz_material,
    normalize_text,
    signature_from_material,
    verif_material,
)


class TestNormalization:
    def test_hex_literals_collapse(self):
        assert normalize_text("fault at 0x80001234") == "fault at <addr>"
        assert (normalize_text("0xDEAD vs 0xbeef")
                == "<addr> vs <addr>")

    def test_long_decimals_collapse_short_survive(self):
        # Addresses/timestamps rendered in decimal collapse; small
        # numbers (error codes, hart ids) are identity-bearing and stay.
        assert normalize_text("hart 2 died at 139637976727552") == \
            "hart 2 died at <num>"
        assert normalize_text("exitcode -9, 3 retries") == \
            "exitcode -9, 3 retries"

    def test_none_is_empty(self):
        assert normalize_text(None) == ""

    def test_same_bug_different_address_same_text(self):
        a = normalize_text("trap vector targets unmapped memory (0x7f000)")
        b = normalize_text("trap vector targets unmapped memory (0x13370)")
        assert a == b


class TestSignature:
    def test_digest_is_deterministic(self):
        material = {"kind": "chaos", "cause": "x", "sites": ["mmio"]}
        first = signature_from_material(material)
        second = signature_from_material(dict(material))
        assert first["digest"] == second["digest"]
        assert first["algo"] == SIGNATURE_ALGO

    def test_digest_is_key_order_independent(self):
        a = signature_from_material({"a": 1, "b": 2})
        b = signature_from_material({"b": 2, "a": 1})
        assert a["digest"] == b["digest"]

    def test_different_material_different_digest(self):
        a = signature_from_material({"kind": "chaos", "cause": "x"})
        b = signature_from_material({"kind": "chaos", "cause": "y"})
        assert a["digest"] != b["digest"]

    def test_canonical_json_is_compact_and_sorted(self):
        text = canonical_material_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'


class TestChaosMaterial:
    def _result(self, **overrides):
        from repro.faults.chaos import ChaosResult

        result = ChaosResult(firmware="opensbi", plan="p", seed=7)
        for name, value in overrides.items():
            setattr(result, name, value)
        return result

    def test_material_is_timing_and_seed_free(self):
        material = chaos_material(self._result(
            halt_reason="miralis: firmware quarantined (bad vector 0x7000)",
            quarantined=True,
            injections=5,
            injection_log=(("vcsr-write", 0, "x"), ("mmio", 3, "y")),
            recoveries={"detect:bad-vector": 4, "retries": 3,
                        "recoveries": 4},
        ))
        assert material["kind"] == "chaos"
        assert material["sites"] == ["mmio", "vcsr-write"]
        assert material["detectors"] == ["detect:bad-vector"]
        assert "<addr>" in material["cause"]
        # Nothing seed- or count-shaped leaks into identity.
        assert 7 not in material.values()
        assert 5 not in material.values()
        assert "p" not in material.values()

    def test_same_failure_different_seed_same_digest(self):
        a = chaos_material(self._result(
            seed=1, halt_reason="quarantined (0x1000)", quarantined=True))
        b = chaos_material(self._result(
            seed=2, halt_reason="quarantined (0x2000)", quarantined=True))
        assert (signature_from_material(a)["digest"]
                == signature_from_material(b)["digest"])

    def test_plan_name_not_in_material(self):
        # The shrinker renames plans; a minimized repro of bug X must
        # still hash as bug X.
        a = chaos_material(self._result(plan="padded-mtvec",
                                        quarantined=True))
        b = chaos_material(self._result(plan="padded-mtvec-shrunk",
                                        quarantined=True))
        assert a == b


class TestFuzzAndVerifMaterial:
    def test_fuzz_material_uses_diff_shape_not_values(self):
        from repro.verif.fuzz import FuzzFinding, Scenario

        def finding(memory):
            return FuzzFinding(
                scenario=Scenario(seed=1, length=4),
                offload=True,
                native={"memory": memory, "crashed": None, "ssi": 1},
                virtualized={"memory": [0], "crashed": None, "ssi": 1},
            )

        a = fuzz_material(finding([1, 2, 3]))
        b = fuzz_material(finding([9, 9, 9]))
        assert a == b
        assert a["diff_fields"] == ["memory"]

    def test_verif_material_is_shape_sorted(self):
        doc = {"task": "faithful-emulation", "inputs_checked": 99,
               "divergences": [
                   {"check": "csr", "field": "mstatus", "expected": 1},
                   {"check": "csr", "field": "mstatus", "expected": 2},
                   {"check": "pmp", "field": "pmpcfg0"},
               ]}
        material = verif_material(doc)
        assert material["shapes"] == [["csr", "mstatus"], ["pmp", "pmpcfg0"]]
        assert "inputs_checked" not in material

    def test_verif_material_matches_report_divergence_shapes(self):
        from repro.verif.report import CheckReport, Divergence

        report = CheckReport(task="t")
        report.record(Divergence("csr", "mstatus", 1, 2))
        report.record(Divergence("csr", "mstatus", 3, 4))
        report.record(Divergence("pmp", "pmpcfg0", 0, 1))
        material = verif_material(report.to_dict(include_timing=False))
        assert material["shapes"] == [
            list(shape) for shape in report.divergence_shapes()]

    def test_cell_fallback_normalizes_error(self):
        a = cell_fallback_material("chaos", "error",
                                   "RuntimeError: bad read 0xAAAA")
        b = cell_fallback_material("chaos", "error",
                                   "RuntimeError: bad read 0xBBBB")
        assert a == b
        c = cell_fallback_material("chaos", "timeout", None)
        assert a != c


# Red-first tripwire: on the pre-triage tree this module fails at import.
assert pytest is not None
