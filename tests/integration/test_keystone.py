"""Keystone policy (§5.3): enclave lifecycle and isolation."""

import pytest

from repro.isa import constants as c
from repro.policy.keystone import (
    ENCLAVE_INTERRUPTED,
    ERR_INVALID_ID,
    ERR_NOT_RUNNABLE,
    EXT_KEYSTONE,
    EnclaveApp,
    EnclaveState,
    FN_ATTEST_ENCLAVE,
    FN_CREATE_ENCLAVE,
    FN_DESTROY_ENCLAVE,
    FN_RANDOM,
    FN_RESUME_ENCLAVE,
    FN_RUN_ENCLAVE,
    KeystonePolicy,
)
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized, memory_regions

ENCLAVE_SECRET = 0x5EED_5EED_5EED_5EED


def simple_enclave(progress_goal=3, compute=2_000):
    def workload(app, ctx):
        while app.progress < progress_goal:
            ctx.compute(compute)
            app.progress += 1
        return 42

    return workload


def build_keystone_system(workload, enclave_workload=None, **kwargs):
    policy = KeystonePolicy()
    system = build_virtualized(
        VISIONFIVE2, workload=workload, policy=policy, **kwargs
    )
    regions = memory_regions(VISIONFIVE2)
    app = EnclaveApp(
        "eapp", regions["enclave"], system.machine,
        enclave_workload or simple_enclave(),
    )
    policy.register_app(app)
    return system, policy, app


class TestLifecycle:
    def test_create_run_exit_destroy(self):
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            error, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            seen["create"] = error
            error, value = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            seen["run"] = (error, value)
            error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_DESTROY_ENCLAVE, eid)
            seen["destroy"] = error

        system, policy, app = build_keystone_system(workload)
        system.run()
        assert seen["create"] == 0
        assert seen["run"] == (0, 42)
        assert seen["destroy"] == 0
        assert app.progress == 3

    def test_invalid_enclave_ids(self):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, 99)
            seen["bad_run"] = error
            error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, 0x1234)
            seen["bad_create"] = error

        system, _, _ = build_keystone_system(workload)
        system.run()
        assert seen["bad_run"] == ERR_INVALID_ID
        assert seen["bad_create"] == ERR_INVALID_ID

    def test_cannot_run_twice(self):
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            seen["second"] = error

        system, _, _ = build_keystone_system(workload)
        system.run()
        assert seen["second"] == ERR_NOT_RUNNABLE

    def test_enclave_services(self):
        seen = {}

        def enclave_workload(app, ctx):
            _, seen["random"] = 0, ctx.ecall(a6=FN_RANDOM, a7=EXT_KEYSTONE)[0]
            seen["attest"] = ctx.ecall(a6=FN_ATTEST_ENCLAVE, a7=EXT_KEYSTONE)
            return 7

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            seen["run"] = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)

        system, _, _ = build_keystone_system(
            workload, enclave_workload=enclave_workload
        )
        system.run()
        assert seen["run"] == (0, 7)
        assert seen["attest"][0] == 0  # attestation success


class TestInterruption:
    def test_timer_interrupts_enclave_and_resume_completes(self):
        seen = {"resumes": 0}

        def enclave_workload(app, ctx):
            while app.progress < 40:
                ctx.compute(100_000)  # long-running: spans timer ticks
                app.progress += 1
            return 11

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.arm_timer_tick(ctx)
            error, value = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            while error == ENCLAVE_INTERRUPTED:
                seen["resumes"] += 1
                kernel.arm_timer_tick(ctx)
                error, value = kernel.sbi_call(
                    ctx, EXT_KEYSTONE, FN_RESUME_ENCLAVE, eid
                )
            seen["final"] = (error, value)

        system, policy, app = build_keystone_system(
            workload, enclave_workload=enclave_workload
        )
        system.run()
        assert seen["final"] == (0, 11)
        assert seen["resumes"] >= 1  # the tick really interrupted it
        assert app.progress == 40

    def test_host_interrupts_serviced_during_enclave(self):
        """The OS's timer tick is not lost while the enclave runs."""
        seen = {}

        def enclave_workload(app, ctx):
            while app.progress < 20:
                ctx.compute(100_000)
                app.progress += 1
            return 0

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.arm_timer_tick(ctx)
            ticks_before = kernel.timer_ticks
            error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            while error == ENCLAVE_INTERRUPTED:
                ctx.csrr(c.CSR_SSCRATCH)  # delivery point for STIP
                kernel.arm_timer_tick(ctx)
                error, _ = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RESUME_ENCLAVE, eid)
            seen["ticks"] = kernel.timer_ticks - ticks_before

        system, _, _ = build_keystone_system(
            workload, enclave_workload=enclave_workload
        )
        system.run()
        assert seen["ticks"] >= 1


class TestIsolation:
    def test_os_cannot_read_enclave_memory(self):
        seen = {}

        def enclave_workload(app, ctx):
            ctx.store(app.region.base + 0x1000, ENCLAVE_SECRET, size=8)
            return 0

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            # The enclave's memory must be unreadable from S-mode.
            from repro.spec.pmp import pmp_check
            from repro.isa.constants import AccessType, S_MODE

            csr_file = ctx.hart.state.csr
            result = pmp_check(
                csr_file.pmpcfg, csr_file.pmpaddr, base + 0x1000, 8,
                AccessType.READ, S_MODE, pmp_count=8,
            )
            seen["os_can_read"] = result.allowed

        system, _, _ = build_keystone_system(
            workload, enclave_workload=enclave_workload
        )
        system.run()
        assert seen["os_can_read"] is False

    def test_firmware_cannot_read_enclave_memory(self):
        """The paper's strengthening: the enclave is protected from the
        *firmware* too (vendor firmware is no longer in the TCB)."""
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)
            # Compute the firmware-world PMP view and check it.
            miralis = system.miralis
            from repro.core.vcpu import World
            from repro.isa.constants import AccessType, U_MODE
            from repro.spec.pmp import pmp_check

            cfg, addr = miralis.vpmp.compute(
                miralis.vctx[0], World.FIRMWARE, miralis.policy, 0
            )
            result = pmp_check(cfg, addr, base + 0x1000, 8,
                               AccessType.READ, U_MODE, pmp_count=8)
            seen["fw_can_read"] = result.allowed

        system, _, _ = build_keystone_system(workload)
        system.run()
        assert seen["fw_can_read"] is False

    def test_enclave_memory_blocked_while_enclave_not_running(self):
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            # Created but never run: still protected.
            outcome = ctx.exec(
                __import__("repro.isa.instructions", fromlist=["Instruction"])
                .Instruction("ld", rd=5, rs1=31)
            ) if False else None
            from repro.spec.pmp import pmp_check
            from repro.isa.constants import AccessType, S_MODE

            csr_file = ctx.hart.state.csr
            seen["allowed"] = pmp_check(
                csr_file.pmpcfg, csr_file.pmpaddr, base, 8,
                AccessType.WRITE, S_MODE, pmp_count=8,
            ).allowed

        system, _, _ = build_keystone_system(workload)
        system.run()
        assert seen["allowed"] is False

    def test_enclave_state_machine(self):
        def workload(kernel, ctx):
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)

        system, policy, _ = build_keystone_system(workload)
        system.run()
        assert policy.enclaves[1].state == EnclaveState.STOPPED
        assert policy.enclaves[1].measurement

    def test_enclave_registers_scrubbed_on_entry(self):
        seen = {}

        def enclave_workload(app, ctx):
            seen["regs"] = [ctx.get_reg(i) for i in range(1, 10)]
            return 0

        def workload(kernel, ctx):
            ctx.hart.state.set_xreg(9, 0xDEAD_0001)  # s1 kernel value
            base = memory_regions(VISIONFIVE2)["enclave"].base
            _, eid = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base)
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_RUN_ENCLAVE, eid)

        system, _, _ = build_keystone_system(
            workload, enclave_workload=enclave_workload
        )
        system.run()
        assert all(value == 0 for value in seen["regs"])
