"""Differential check: the perf caches must not change simulation behaviour.

The hot-path layer (decode/encode memoization, region and device lookup
caches, CSR dispatch tables) is pure memoization — booting the same
deployment with the caches disabled must produce bit-identical trap logs,
console output, and final architectural state.  A cache that leaked state
between machines or returned a stale mapping would diverge here.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.policy import FirmwareSandboxPolicy
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def _workload(kernel, ctx):
    t0 = kernel.read_time(ctx)
    ctx.compute(5_000)
    kernel.sbi_set_timer(ctx, t0 + 2_000)
    ctx.compute(2_000)
    kernel.sbi_send_ipi(ctx, 0b1, 0)
    ctx.compute(1_000)
    kernel.print(ctx, f"t={kernel.read_time(ctx)}\n")


def _boot():
    system = build_virtualized(
        VISIONFIVE2,
        workload=_workload,
        policy=FirmwareSandboxPolicy(
            extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
        ),
    )
    halt = system.run()
    hart = system.machine.harts[0]
    return {
        "halt": halt,
        "console": system.console_output,
        "events": list(system.machine.stats.events),
        "trap_counts": dict(system.machine.stats.trap_counts),
        "world_switches": system.machine.stats.world_switches,
        "fastpath_hits": system.machine.stats.fastpath_hits,
        "pc": hart.state.pc,
        "mode": hart.state.mode,
        "xregs": hart.state.xregs,
        "csrs": hart.state.csr.snapshot(),
        "cycles": system.machine.cycles,
        "instret": hart.instret,
    }


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf.clear_caches()
    yield
    perf.set_caches_enabled(True)


class TestCacheDifferential:
    def test_cached_and_uncached_boots_are_identical(self):
        cached = _boot()
        with perf.caches_disabled():
            uncached = _boot()

        # Trap event logs must match event for event.
        assert cached["events"] == uncached["events"]
        # Final architectural state (every CSR, GPRs, pc, mode) must match.
        assert cached["csrs"] == uncached["csrs"]
        assert cached["xregs"] == uncached["xregs"]
        # And everything else observable.
        for key in ("halt", "console", "trap_counts", "world_switches",
                    "fastpath_hits", "pc", "mode", "cycles", "instret"):
            assert cached[key] == uncached[key], key

    def test_toggle_round_trip(self):
        assert perf.caches_enabled()
        with perf.caches_disabled():
            assert not perf.caches_enabled()
            with perf.caches_disabled():
                assert not perf.caches_enabled()
            assert not perf.caches_enabled()
        assert perf.caches_enabled()

    def test_clear_caches_bumps_generation(self):
        before = perf.cache_generation()
        perf.clear_caches()
        assert perf.cache_generation() == before + 1
