"""Chaos integration suite: every firmware × fault plan must end well.

The acceptance contract for the fault model: under every canned plan and
a set of fixed seeds, each firmware either brings the OS to its workload
checkpoint or the run terminates through a *recorded* recovery decision
(quarantine / clean halt) — and no Python exception ever escapes the
simulator.  Identical (plan, seed) pairs must replay identical trap logs.
"""

import pytest

from repro.faults import CHAOS_SUITE, run_chaos
from repro.faults.chaos import CHAOS_FIRMWARES

#: Fixed seeds for the full matrix.  One seed across the whole matrix
#: keeps the suite fast; the CI chaos-smoke job adds random-plan sweeps.
MATRIX_SEED = 3


class TestChaosMatrix:
    @pytest.mark.parametrize("firmware", CHAOS_FIRMWARES)
    @pytest.mark.parametrize("plan", CHAOS_SUITE)
    def test_firmware_survives_plan(self, firmware, plan):
        result = run_chaos(firmware, plan, seed=MATRIX_SEED)
        assert result.error is None, (
            f"Python exception escaped: {result.error}\n{result.report()}"
        )
        assert result.ok, result.report()
        # The end state is a recorded decision, not a silent wedge.
        assert result.checkpoint or result.quarantined or result.halt_reason

    @pytest.mark.parametrize("firmware", CHAOS_FIRMWARES)
    def test_control_plan_reaches_checkpoint(self, firmware):
        result = run_chaos(firmware, "none", seed=MATRIX_SEED)
        assert result.ok and result.checkpoint, result.report()
        assert result.injections == 0
        assert not result.quarantined


class TestChaosDeterminism:
    @pytest.mark.parametrize("firmware", ["opensbi", "zephyr"])
    @pytest.mark.parametrize("plan", ["flaky-uart", "stall-loop"])
    def test_same_seed_identical_runs(self, firmware, plan):
        a = run_chaos(firmware, plan, seed=7)
        b = run_chaos(firmware, plan, seed=7)
        assert a.trap_log == b.trap_log
        assert a.halt_reason == b.halt_reason
        assert a.recoveries == b.recoveries
        assert a.injections == b.injections
        assert a.console == b.console

    def test_random_plan_deterministic_per_seed(self):
        a = run_chaos("opensbi", "random", seed=11)
        b = run_chaos("opensbi", "random", seed=11)
        assert a.plan == b.plan == "random-11"
        assert a.trap_log == b.trap_log


class TestRecoveryAccounting:
    """Watchdog counters and trap-statistics recovery counts must agree.

    The watchdog counts its decisions in ``counters`` while the trap log
    is annotated via ``annotate_last`` — which has move semantics, so
    annotations alone under-count when several recoveries share one trap
    event.  ``TrapStats.recovery_counts`` is the first-class mirror; this
    suite pins the invariant that both views (and the ``ChaosResult``
    surface) tell the same story.
    """

    @pytest.mark.parametrize("plan", CHAOS_SUITE)
    def test_watchdog_and_stats_recovery_counts_agree(self, plan):
        result = run_chaos("opensbi", plan, seed=MATRIX_SEED)
        assert result.error is None, result.report()
        for kind in ("recoveries", "retries", "quarantines"):
            assert result.recoveries.get(kind, 0) == \
                result.stat_recoveries.get(kind, 0), (
                f"{plan}: watchdog counted "
                f"{result.recoveries.get(kind, 0)} {kind} but the trap "
                f"stats recorded {result.stat_recoveries.get(kind, 0)}"
            )

    @pytest.mark.parametrize("plan", ["mtvec-smash", "stall-loop"])
    def test_every_recovery_is_a_retry_or_quarantine(self, plan):
        result = run_chaos("opensbi", plan, seed=MATRIX_SEED)
        recoveries = result.recoveries.get("recoveries", 0)
        assert recoveries > 0, f"{plan} at seed {MATRIX_SEED} recovered nothing"
        assert recoveries == (
            result.recoveries.get("retries", 0)
            + result.recoveries.get("quarantines", 0)
        )

    def test_detections_sum_to_recoveries(self):
        result = run_chaos("opensbi", "stall-loop", seed=MATRIX_SEED)
        detections = sum(
            count for name, count in result.recoveries.items()
            if name.startswith("detect:")
        )
        assert detections == result.recoveries.get("recoveries", 0)

    @pytest.mark.parametrize("plan", CHAOS_SUITE)
    def test_per_hart_recovery_counts_sum_to_aggregate(self, plan):
        """Watchdog decisions are keyed by hart; the per-hart views must
        always reconstruct the aggregates exactly (no mis-attribution)."""
        result = run_chaos("opensbi", plan, seed=MATRIX_SEED)
        assert result.error is None, result.report()
        for kind, total in result.recoveries.items():
            per_hart = sum(
                counts.get(kind, 0) for counts in result.hart_recoveries
            )
            assert per_hart == total, (
                f"{plan}: {kind} aggregate {total} but per-hart sum {per_hart}"
            )
        for kind, total in result.stat_recoveries.items():
            per_hart = sum(
                counts.get(kind, 0)
                for counts in result.stat_hart_recoveries.values()
            )
            assert per_hart == total, kind

    def test_chaos_at_two_harts_deterministic_and_accounted(self):
        """The chaos contract holds under SMP interleaving: identical
        runs per seed, and per-hart recovery accounting stays exact."""
        a = run_chaos("opensbi", "stall-loop", seed=MATRIX_SEED, harts=2)
        b = run_chaos("opensbi", "stall-loop", seed=MATRIX_SEED, harts=2)
        assert a.error is None, a.report()
        assert a.ok, a.report()
        assert a.trap_log == b.trap_log
        assert a.halt_reason == b.halt_reason
        assert a.recoveries == b.recoveries
        assert len(a.hart_recoveries) == 2
        for kind, total in a.recoveries.items():
            per_hart = sum(
                counts.get(kind, 0) for counts in a.hart_recoveries
            )
            assert per_hart == total, kind


class TestChaosOutcomes:
    def test_stall_loop_ends_in_recorded_decision(self):
        result = run_chaos("opensbi", "stall-loop", seed=3)
        assert result.ok, result.report()
        # The runaway loop cannot end silently: either the watchdog
        # quarantined the firmware, or recovery retries got it through.
        assert result.quarantined or result.recoveries.get("retries", 0) > 0

    def test_quarantined_run_still_serves_the_os(self):
        result = run_chaos("opensbi", "stall-loop", seed=3)
        if result.quarantined and result.checkpoint:
            assert result.recoveries.get("quarantined-served", 0) > 0

    def test_malicious_attack_stays_contained_under_chaos(self):
        # Faults must never weaken the sandbox: run the rootkit firmware
        # under every plan and assert the attack still fails.
        for plan in CHAOS_SUITE:
            result = run_chaos("malicious", plan, seed=MATRIX_SEED)
            assert result.ok, result.report()

    def test_random_sweep_never_leaks_exceptions(self):
        for seed in (1, 2, 5):
            for firmware in CHAOS_FIRMWARES:
                result = run_chaos(firmware, "random", seed=seed)
                assert result.error is None, result.report()
                assert result.ok, result.report()

    def test_unknown_firmware_rejected(self):
        with pytest.raises(ValueError, match="unknown firmware"):
            run_chaos("seabios", "none", seed=0)

    def test_report_mentions_key_fields(self):
        result = run_chaos("opensbi", "none", seed=0)
        text = result.report()
        for token in ("firmware:", "plan:", "seed:", "verdict:"):
            assert token in text
