"""Sstc / hardware-time platforms (§8.3.3) and vendor CSRs (§8.2)."""

import pytest

from repro.isa import constants as c
from repro.spec.platform import PREMIER_P550, RVA23_MACHINE, VISIONFIVE2
from repro.system import build_native, build_virtualized

SSTC_VF2 = VISIONFIVE2.with_overrides(has_hw_time_csr=True, has_sstc=True)


class TestHardwareTimeCsr:
    @pytest.mark.parametrize("builder", [build_native, build_virtualized],
                             ids=["native", "miralis"])
    def test_time_reads_do_not_trap(self, builder):
        def workload(kernel, ctx):
            machine = kernel.machine
            machine.stats.reset()
            for _ in range(10):
                kernel.read_time(ctx)
            machine.time_read_traps = machine.stats.total_traps

        system = builder(SSTC_VF2, workload=workload)
        system.run()
        assert system.machine.time_read_traps == 0

    def test_time_still_monotone(self):
        seen = {}

        def workload(kernel, ctx):
            t0 = kernel.read_time(ctx)
            ctx.compute(10_000)
            seen["delta"] = kernel.read_time(ctx) - t0

        system = build_virtualized(SSTC_VF2, workload=workload)
        system.run()
        assert seen["delta"] > 0


class TestSstcTimer:
    @pytest.mark.parametrize("builder", [build_native, build_virtualized],
                             ids=["native", "miralis"])
    def test_stimecmp_fires_without_firmware(self, builder):
        seen = {}

        def workload(kernel, ctx):
            machine = kernel.machine
            now = kernel.read_time(ctx)
            machine.stats.reset()
            kernel.sbi_set_timer(ctx, now + 60)  # direct stimecmp write
            ctx.csrs(c.CSR_SIE, c.MIP_STIP)
            before = kernel.timer_ticks
            while kernel.timer_ticks == before:
                ctx.compute(300)
            seen["m_traps"] = sum(
                count for cause, count in machine.stats.trap_counts.items()
                if not cause.startswith("irq:SUPERVISOR")
            )

        system = builder(SSTC_VF2, workload=workload)
        system.run()
        # The whole timer path stayed out of M-mode: no ecall, no MTI.
        assert seen["m_traps"] == 0

    def test_stimecmp_write_requires_stce(self):
        """Without menvcfg.STCE the supervisor cannot touch stimecmp."""
        from repro.spec.state import MachineState
        from repro.spec.step import execute_instruction
        from repro.isa.instructions import Instruction

        state = MachineState(SSTC_VF2)
        state.csr.mtvec = 0x8020_0000
        state.mode = c.S_MODE
        outcome = execute_instruction(
            state, Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_STIMECMP)
        )
        assert outcome.trap is not None

    def test_rva23_machine_has_everything(self):
        seen = {}

        def workload(kernel, ctx):
            machine = kernel.machine
            machine.stats.reset()
            kernel.read_time(ctx)
            now = kernel.read_time(ctx)
            kernel.sbi_set_timer(ctx, now + 50)
            base = kernel.region.base + 0x6000
            ctx.store(base + 1, 0xAB, size=2)  # hw misaligned
            seen["traps"] = machine.stats.total_traps

        system = build_virtualized(RVA23_MACHINE, workload=workload)
        system.run()
        assert seen["traps"] == 0  # RVA23: none of these trap


class TestVendorCsrs:
    def test_p550_firmware_writes_allowed_under_miralis(self):
        """§8.2: 'MIRALIS explicitly allows writes to these CSRs.'"""
        system = build_virtualized(PREMIER_P550)
        system.run()
        vctx = system.miralis.vctx[0]
        for vendor_csr in PREMIER_P550.vendor_csrs:
            assert vctx.vendor[vendor_csr] == 1  # the boot-time writes stuck

    def test_vendor_csr_absent_on_other_platform(self):
        from repro.core.csr_emul import VirtCsrError, read_csr
        from repro.core.vcpu import VirtContext

        vctx = VirtContext(VISIONFIVE2)
        with pytest.raises(VirtCsrError):
            read_csr(vctx, 0x7C0)

    def test_vendor_csr_roundtrip_preserved_across_worlds(self):
        seen = {}

        def workload(kernel, ctx):
            kernel.sbi_call(ctx, 0x999, 0)  # force some world switches
            seen["vctx"] = dict(system.miralis.vctx[0].vendor)

        system = build_virtualized(PREMIER_P550, workload=workload)
        system.run()
        assert all(value == 1 for value in seen["vctx"].values())
