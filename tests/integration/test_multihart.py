"""Multi-hart behaviour: HSM hart_start, IPIs, and remote fences."""

import pytest

from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized


@pytest.fixture(params=["native", "virtualized"])
def builder(request):
    if request.param == "native":
        return build_native
    return build_virtualized


class TestHartStart:
    def test_secondaries_start_and_park(self, builder):
        seen = {}

        def workload(kernel, ctx):
            seen["booted"] = list(kernel.booted_harts)
            seen["parked"] = [
                hart.parked_pc is not None
                for hart in kernel.machine.harts[1:]
            ]

        system = builder(VISIONFIVE2, workload=workload,
                         start_secondaries=True)
        system.run()
        assert seen["booted"] == [0, 1, 2, 3]
        assert all(seen["parked"])

    def test_double_start_rejected(self, builder):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_call(
                ctx, sbi.EXT_HSM, sbi.FN_HSM_HART_START,
                1, kernel.secondary_entry, 1,
            )
            seen["again"] = error

        system = builder(VISIONFIVE2, workload=workload,
                         start_secondaries=True)
        system.run()
        assert seen["again"] == (-6) & ((1 << 64) - 1)  # ALREADY_AVAILABLE

    def test_bad_hartid_rejected(self, builder):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_call(
                ctx, sbi.EXT_HSM, sbi.FN_HSM_HART_START, 99, 0, 0
            )
            seen["error"] = error

        system = builder(VISIONFIVE2, workload=workload)
        system.run()
        assert seen["error"] == (-3) & ((1 << 64) - 1)  # INVALID_PARAM

    def test_hart_status(self, builder):
        seen = {}

        def workload(kernel, ctx):
            _, started = kernel.sbi_call(
                ctx, sbi.EXT_HSM, sbi.FN_HSM_HART_GET_STATUS, 0
            )
            _, stopped = kernel.sbi_call(
                ctx, sbi.EXT_HSM, sbi.FN_HSM_HART_GET_STATUS, 3
            )
            seen["started"], seen["stopped"] = started, stopped

        system = builder(VISIONFIVE2, workload=workload)
        system.run()
        assert seen["started"] == sbi.HSM_STARTED
        assert seen["stopped"] == sbi.HSM_STOPPED


class TestIpis:
    def test_remote_ipi_serviced(self, builder):
        seen = {}

        def workload(kernel, ctx):
            before = kernel.software_interrupts
            kernel.sbi_send_ipi(ctx, 0b10, 0)  # hart 1
            seen["remote_ssi"] = kernel.software_interrupts - before

        system = builder(VISIONFIVE2, workload=workload,
                         start_secondaries=True)
        system.run()
        # The remote hart's kernel handler counted an SSI (the kernel
        # program is shared, so the counter is global).
        assert seen["remote_ssi"] >= 1

    def test_broadcast_ipi(self, builder):
        seen = {}

        def workload(kernel, ctx):
            before = kernel.software_interrupts
            kernel.sbi_send_ipi(ctx, (1 << 64) - 1, (1 << 64) - 1)
            ctx.csrr(c.CSR_SSCRATCH)  # self-IPI delivery point
            seen["count"] = kernel.software_interrupts - before

        system = builder(VISIONFIVE2, workload=workload,
                         start_secondaries=True)
        system.run()
        assert seen["count"] >= 4  # all harts

    def test_invalid_target_rejected(self, builder):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_send_ipi(ctx, 0b1, 64)
            seen["error"] = error

        system = builder(VISIONFIVE2, workload=workload)
        system.run()
        assert seen["error"] == (-3) & ((1 << 64) - 1)

    def test_remote_fence_reaches_remote_hart(self, builder):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_remote_fence_i(ctx, 0b10, 0)
            seen["error"] = error

        system = builder(VISIONFIVE2, workload=workload,
                         start_secondaries=True)
        system.run()
        assert seen["error"] == 0


class TestVirtualizedSecondaries:
    def test_secondary_harts_in_os_world(self):
        """Started harts run the OS directly; their monitor state exists."""
        from repro.core.vcpu import World

        seen = {}

        def workload(kernel, ctx):
            miralis = system.miralis
            seen["worlds"] = [miralis.world[h] for h in range(4)]

        system = build_virtualized(VISIONFIVE2, workload=workload,
                                   start_secondaries=True)
        system.run()
        assert seen["worlds"][1] == World.OS

    def test_secondary_pmp_installed(self):
        """A started hart's physical PMP protects the monitor."""
        from repro.isa.constants import AccessType, S_MODE
        from repro.spec.pmp import pmp_check

        seen = {}

        def workload(kernel, ctx):
            hart1 = kernel.machine.harts[1]
            seen["monitor_blocked"] = not pmp_check(
                hart1.state.csr.pmpcfg, hart1.state.csr.pmpaddr,
                system.miralis.region.base, 8, AccessType.READ, S_MODE,
                pmp_count=8,
            ).allowed

        system = build_virtualized(VISIONFIVE2, workload=workload,
                                   start_secondaries=True)
        system.run()
        assert seen["monitor_blocked"]
