"""Cache-on/off differential identity for full-system runs.

The block engine must be architecturally invisible: every firmware boot,
every chaos cell, and every virtualized closed-blob run must produce
byte-identical trace streams, coverage digests, ChaosResult documents,
and final checkpoint digests whether the engine is on (machines built
normally) or off (``blocks_disabled()``).
"""

import dataclasses
import json
from contextlib import nullcontext

import pytest

from repro import perf
from repro.coverage import CoverageMap
from repro.faults.chaos import CHAOS_FIRMWARES, run_chaos
from repro.hart.blocks import blocks_disabled
from repro.trace import Tracer


@pytest.fixture(autouse=True)
def _fresh_caches():
    perf.clear_caches()
    perf.set_caches_enabled(True)
    yield
    perf.clear_caches()
    perf.set_caches_enabled(True)


def _blocks_ctx(blocks: bool):
    return nullcontext() if blocks else blocks_disabled()


def _chaos_doc(firmware: str, plan: str, seed: int, blocks: bool,
               harts=None) -> str:
    with _blocks_ctx(blocks):
        result = run_chaos(firmware, plan=plan, seed=seed, harts=harts)
    assert result.error is None
    return json.dumps(dataclasses.asdict(result), sort_keys=True,
                      default=list)


def _boot_fingerprint(firmware: str, harts, blocks: bool) -> tuple:
    tracer = Tracer()
    coverage = CoverageMap()
    with _blocks_ctx(blocks):
        result = run_chaos(firmware, plan="none", seed=0, tracer=tracer,
                           coverage=coverage, harts=harts)
    assert result.error is None
    return (
        json.dumps(dataclasses.asdict(result), sort_keys=True, default=list),
        tuple(event.to_tuple() for event in tracer.events()),
        coverage.digest(),
    )


class TestFirmwareBootIdentity:
    """Every firmware × every hart count: trace + coverage + result."""

    @pytest.mark.parametrize("harts", [None, 2, 4])
    @pytest.mark.parametrize("firmware", CHAOS_FIRMWARES)
    def test_boot_identity(self, firmware, harts):
        on = _boot_fingerprint(firmware, harts, blocks=True)
        off = _boot_fingerprint(firmware, harts, blocks=False)
        assert on == off


class TestChaosMatrix:
    """The (firmware × fault-plan × seed) mini-matrix from the issue."""

    @pytest.mark.parametrize("firmware,plan,seed", [
        ("opensbi", "none", 0),
        ("opensbi", "transient-mmio", 3),
        ("opensbi", "decode-flip", 5),
        ("rustsbi", "csr-chaos", 1),
        ("rustsbi", "mtvec-smash", 2),
        ("zephyr", "transient-mmio", 4),
        ("malicious", "none", 0),
    ])
    def test_chaos_result_identity(self, firmware, plan, seed):
        on = _chaos_doc(firmware, plan, seed, blocks=True)
        off = _chaos_doc(firmware, plan, seed, blocks=False)
        assert on == off

    def test_smp_chaos_identity(self):
        on = _chaos_doc("opensbi", "transient-mmio", 9, blocks=True, harts=2)
        off = _chaos_doc("opensbi", "transient-mmio", 9, blocks=False, harts=2)
        assert on == off


def _closed_blob_run(blocks: bool) -> tuple:
    """A closed vendor blob under Miralis — the engine's virtualized path.

    The blob's boot code runs an ALU checksum loop long enough to form
    cached blocks in vM-mode (physical U-mode) before deprivileging to a
    Python-modelled kernel, so this exercises world-keyed blocks, real
    world switches, and the final checkpoint digest.
    """
    from repro.core.config import MiralisConfig
    from repro.core.miralis import Miralis
    from repro.hart.binary import BinaryProgram
    from repro.hart.machine import Machine
    from repro.isa import constants as c
    from repro.isa.asm import Assembler
    from repro.os_model.kernel import KernelProgram
    from repro.policy.default import DefaultPolicy
    from repro.snapshot import capture
    from repro.spec.platform import VISIONFIVE2
    from repro.system import memory_regions

    with _blocks_ctx(blocks):
        machine = Machine(VISIONFIVE2)
    regions = memory_regions(VISIONFIVE2)
    base = regions["firmware"].base

    def workload(kernel, ctx):
        error, _ = kernel.sbi_call(ctx, 0x999, 0)
        machine.halt("blob demo complete")

    kernel = KernelProgram("kernel", regions["kernel"], machine,
                           workload=workload)
    asm = Assembler(base=base)
    asm.auipc("t0", 0)
    asm.addi("t0", "t0", 0x100)
    asm.csrw(c.CSR_MTVEC, "t0")
    asm.li("a1", 60)
    asm.label("sum")  # an ALU stretch the engine can cache
    for i in range(16):
        asm.addi("a2", "a2", i + 1)
        asm.xori("a3", "a2", 0x3C)
    asm.addi("a1", "a1", -1)
    asm.bne("a1", "zero", "sum")
    asm.li("t1", 3 << 11)  # mstatus.MPP = S
    asm.csrc(c.CSR_MSTATUS, "t1")
    asm.li("t1", 1 << 11)
    asm.csrs(c.CSR_MSTATUS, "t1")
    asm.li("t2", kernel.entry_point)
    asm.csrw(c.CSR_MEPC, "t2")
    asm.li("a0", 0)
    asm.mret()
    while asm.current_address < base + 0x100:
        asm.nop()
    # Trap handler: mepc += 4; a0 = -2 (NOT_SUPPORTED); mret.
    asm.csrr("t0", c.CSR_MEPC)
    asm.addi("t0", "t0", 4)
    asm.csrw(c.CSR_MEPC, "t0")
    asm.li("a0", -2)
    asm.mret()

    blob = BinaryProgram("closed-blob", regions["firmware"], machine,
                         asm.binary())
    miralis = Miralis(machine, regions["miralis"], blob,
                      MiralisConfig(), DefaultPolicy())
    machine.register(blob)
    machine.register(kernel)
    machine.register(miralis)
    tracer = Tracer()
    coverage = CoverageMap()
    machine.tracer = tracer
    machine.coverage = coverage
    reason = machine.boot(entry=miralis.region.base)
    hart = machine.harts[0]
    fingerprint = (
        reason,
        hart.state.pc,
        tuple(hart.state.xregs),
        hart.cycles,
        hart.instret,
        machine.stats.world_switches,
        tuple(event.to_tuple() for event in tracer.events()),
        coverage.digest(),
        capture(machine).digest(),
    )
    engine_hits = 0 if machine.blocks is None else machine.blocks.hits
    return fingerprint, engine_hits


class TestClosedBlobIdentity:
    def test_virtualized_blob_identity_and_digest(self):
        on, hits_on = _closed_blob_run(blocks=True)
        off, hits_off = _closed_blob_run(blocks=False)
        # The engine genuinely engaged under virtualization...
        assert hits_on > 0
        assert hits_off == 0
        # ...and was architecturally invisible, down to the checkpoint
        # digest.
        assert on == off
