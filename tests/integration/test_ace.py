"""ACE policy (§5.4): confidential VMs with the firmware out of the TCB."""

import pytest

from repro.isa import constants as c
from repro.policy.ace import (
    AcePolicy,
    ConfidentialVm,
    ERR_INVALID_TVM,
    ERR_NOT_RUNNABLE,
    EXIT_DONE,
    EXIT_GUEST_REQUEST,
    EXIT_INTERRUPTED,
    EXT_COVH,
    FN_DESTROY_TVM,
    FN_PROMOTE_TO_TVM,
    FN_TSM_GET_INFO,
    FN_TVM_VCPU_RUN,
    TvmState,
)
from repro.spec.platform import QEMU_VIRT, VISIONFIVE2
from repro.system import build_virtualized, memory_regions

U64 = (1 << 64) - 1


def io_vm(requests=3, compute=3_000):
    """A CVM that boots, performs virtio-style I/O requests, and halts."""

    def workload(vm, ctx):
        while vm.progress < requests:
            ctx.compute(compute)
            vm.progress += 1
            vm.guest_request(ctx, request=vm.progress)

    return workload


def run_tvm_to_completion(kernel, ctx, tvm_id, on_request=None):
    exits = {"io": 0, "irq": 0}
    while True:
        error, reason = ctx.ecall(tvm_id, a6=FN_TVM_VCPU_RUN, a7=EXT_COVH)
        assert error == 0, error
        if reason == EXIT_DONE:
            return exits
        if reason == EXIT_GUEST_REQUEST:
            exits["io"] += 1
            if on_request is not None:
                on_request(ctx.get_reg(12), ctx.get_reg(13))  # a2/a3
        elif reason == EXIT_INTERRUPTED:
            exits["irq"] += 1
            kernel.arm_timer_tick(ctx)


def build_ace_system(workload, vm_workload=None, config=QEMU_VIRT):
    policy = AcePolicy()
    system = build_virtualized(config, workload=workload, policy=policy)
    regions = memory_regions(config)
    vm = ConfidentialVm(
        "linux-cvm", regions["enclave"], system.machine,
        vm_workload or io_vm(),
    )
    policy.register_vm(vm)
    return system, policy, vm


class TestRequiresHExtension:
    def test_rejected_without_h(self):
        """§5.4: ACE leverages the RISC-V H extension."""
        system, policy, _ = build_ace_system(lambda kernel, ctx: None,
                                             config=VISIONFIVE2)
        with pytest.raises(ValueError, match="hypervisor extension"):
            system.run()


class TestLifecycle:
    def test_promote_run_destroy(self):
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            error, count = kernel.sbi_call(ctx, EXT_COVH, FN_TSM_GET_INFO)
            seen["info"] = (error, count)
            error, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            seen["promote"] = error
            seen["exits"] = run_tvm_to_completion(kernel, ctx, tvm_id)
            error, _ = kernel.sbi_call(ctx, EXT_COVH, FN_DESTROY_TVM, tvm_id)
            seen["destroy"] = error

        system, policy, vm = build_ace_system(workload)
        system.run()
        assert seen["info"] == (0, 0)
        assert seen["promote"] == 0
        assert seen["exits"]["io"] == 3
        assert seen["destroy"] == 0
        assert vm.guest_requests == 3

    def test_guest_request_payload_reaches_host(self):
        payloads = []

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            run_tvm_to_completion(
                kernel, ctx, tvm_id,
                on_request=lambda a2, a3: payloads.append(a2),
            )

        system, _, _ = build_ace_system(workload)
        system.run()
        assert payloads == [1, 2, 3]

    def test_invalid_ids(self):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_call(ctx, EXT_COVH, FN_TVM_VCPU_RUN, 42)
            seen["bad_run"] = error
            error, _ = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, 0x1000)
            seen["bad_promote"] = error

        system, _, _ = build_ace_system(workload)
        system.run()
        assert seen["bad_run"] == ERR_NOT_RUNNABLE & U64
        assert seen["bad_promote"] == ERR_INVALID_TVM & U64

    def test_timer_interrupts_vm(self):
        seen = {}

        def vm_workload(vm, ctx):
            while vm.progress < 30:
                ctx.compute(120_000)
                vm.progress += 1

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            kernel.arm_timer_tick(ctx)
            seen["exits"] = run_tvm_to_completion(kernel, ctx, tvm_id)

        system, _, vm = build_ace_system(workload, vm_workload=vm_workload)
        system.run()
        assert seen["exits"]["irq"] >= 1
        assert vm.progress == 30


class TestConfidentiality:
    def test_hypervisor_cannot_read_cvm_memory(self):
        seen = {}

        def vm_workload(vm, ctx):
            ctx.store(vm.region.base + 0x2000, 0x5EC12E7, size=8)

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            run_tvm_to_completion(kernel, ctx, tvm_id)
            from repro.isa.constants import AccessType, S_MODE
            from repro.spec.pmp import pmp_check

            csr_file = ctx.hart.state.csr
            seen["host_reads"] = pmp_check(
                csr_file.pmpcfg, csr_file.pmpaddr, base + 0x2000, 8,
                AccessType.READ, S_MODE,
                pmp_count=QEMU_VIRT.pmp_count,
            ).allowed

        system, _, _ = build_ace_system(workload, vm_workload=vm_workload)
        system.run()
        assert seen["host_reads"] is False

    def test_firmware_excluded_from_tcb(self):
        """§8.4: 'we further strengthen confidentiality by excluding the
        firmware from the TCB' — CVM memory blocked in the firmware world."""
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            miralis = system.miralis
            from repro.core.vcpu import World
            from repro.isa.constants import AccessType, U_MODE
            from repro.spec.pmp import pmp_check

            cfg, addr = miralis.vpmp.compute(
                miralis.vctx[0], World.FIRMWARE, miralis.policy, 0
            )
            seen["fw_reads"] = pmp_check(
                cfg, addr, base + 0x2000, 8, AccessType.READ, U_MODE,
                pmp_count=QEMU_VIRT.pmp_count,
            ).allowed

        system, _, _ = build_ace_system(workload)
        system.run()
        assert seen["fw_reads"] is False

    def test_h_csrs_restored_after_vm_run(self):
        seen = {}

        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            csr_file = ctx.hart.state.csr
            csr_file.write(c.CSR_HSTATUS, 0x40)  # hypervisor state
            before = csr_file.read(c.CSR_HSTATUS)
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            run_tvm_to_completion(kernel, ctx, tvm_id)
            seen["before"] = before
            seen["after"] = csr_file.read(c.CSR_HSTATUS)

        system, _, _ = build_ace_system(workload)
        system.run()
        assert seen["after"] == seen["before"]

    def test_tvm_state_machine(self):
        def workload(kernel, ctx):
            base = memory_regions(QEMU_VIRT)["enclave"].base
            _, tvm_id = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base)
            run_tvm_to_completion(kernel, ctx, tvm_id)

        system, policy, _ = build_ace_system(workload)
        system.run()
        assert policy.tvms[1].state == TvmState.DONE
        assert policy.tvms[1].exits >= 4  # 3 I/O + final
