"""Security evaluation of the firmware sandbox policy (§5.2, §7).

Every attack from the adversarial firmware must *succeed natively*
(demonstrating the real-world exposure the paper motivates with) and be
*contained* by Miralis with the sandbox policy (the paper's guarantee:
OS integrity and confidentiality against a fully-controlled firmware).
"""

import pytest

from repro.firmware.malicious import ATTACKS, MaliciousFirmware, TRIGGER_EID
from repro.isa import constants as c
from repro.policy.sandbox import FirmwareSandboxPolicy
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized, memory_regions

OS_SECRET = 0xC0FFEE_15_5EC12E7


def build_attack_system(attack: str, virtualized: bool, offload: bool = True):
    regions = memory_regions(VISIONFIVE2)
    secret_address = regions["kernel"].base + 0x2000
    monitor_address = regions["miralis"].base + 0x100

    def workload(kernel, ctx):
        # Plant the OS secret and recognizable kernel state, then issue the
        # covert knock that wakes the rootkit.
        ctx.store(secret_address, OS_SECRET, size=8)
        ctx.csrw(c.CSR_SSCRATCH, 0x5EC12E7_0BA5E)
        ctx.hart.state.set_xreg(9, 0xFFFF_FFFF_8123_4567)  # s1: kernel ptr
        kernel.sbi_call(ctx, TRIGGER_EID, 0)
        ctx.store(secret_address + 8, 0x1, size=8)

    firmware_kwargs = {
        "attack": attack,
        "os_secret_address": secret_address,
        "monitor_address": monitor_address,
    }
    if virtualized:
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=MaliciousFirmware,
            workload=workload,
            policy=FirmwareSandboxPolicy(
                extra_allowed_regions=[(0x1000_0000, 0x100)],  # UART
            ),
            offload=offload,
            firmware_kwargs=firmware_kwargs,
        )
    else:
        system = build_native(
            VISIONFIVE2,
            firmware_class=MaliciousFirmware,
            workload=workload,
            firmware_kwargs=firmware_kwargs,
        )
    return system, secret_address


# Attacks expected to succeed natively.  Excluded: monitor-targeting
# attacks (no monitor exists natively), mret_to_mmode (native firmware is
# already M-mode), and pmp_w_without_r (real hardware rejects the reserved
# combination too — the interesting property is that the *virtual* PMP
# rejects it identically, covered below and by the verification suite).
_NATIVE_ATTACKS = tuple(
    attack for attack in ATTACKS
    if attack not in ("read_monitor_memory", "write_monitor_memory",
                      "mret_to_mmode", "dma_device_access",
                      "pmp_w_without_r")
)

# Attacks whose containment is observable from the firmware-side outcome.
# corrupt_smode_csrs is asserted from the OS side instead: the firmware
# sees its (virtual) write stick, but the OS's real stvec is untouched.
_CONTAINED_ATTACKS = tuple(
    attack for attack in ATTACKS if attack != "corrupt_smode_csrs"
)

_SANDBOXED_OFFLOAD = False  # route every trap through the firmware


class TestAttacksSucceedNatively:
    """The vulnerability the paper closes: native firmware owns the OS."""

    @pytest.mark.parametrize("attack", _NATIVE_ATTACKS)
    def test_attack_succeeds_native(self, attack):
        system, _ = build_attack_system(attack, virtualized=False)
        system.run()
        outcome = system.firmware.outcome
        assert outcome.attempted
        assert outcome.succeeded, f"{attack} should succeed natively"

    def test_native_read_leaks_secret(self):
        system, _ = build_attack_system("read_os_memory", virtualized=False)
        system.run()
        assert system.firmware.outcome.leaked_value == OS_SECRET

    def test_native_write_corrupts_os(self):
        system, secret_address = build_attack_system(
            "write_os_memory", virtualized=False
        )
        system.run()
        assert system.machine.ram.read(secret_address, 8) != OS_SECRET


class TestSandboxContainsAttacks:
    @pytest.mark.parametrize("attack", _CONTAINED_ATTACKS)
    def test_attack_contained(self, attack):
        system, secret_address = build_attack_system(
            attack, virtualized=True, offload=_SANDBOXED_OFFLOAD
        )
        system.run()
        outcome = system.firmware.outcome
        assert outcome.attempted, f"{attack} never triggered"
        assert not outcome.succeeded, f"{attack} escaped the sandbox"

    @pytest.mark.parametrize("attack", [
        "read_os_memory", "write_os_memory", "remap_pmp_window",
        "pmp_out_of_range", "read_monitor_memory", "write_monitor_memory",
        "dma_device_access",
    ])
    def test_memory_attacks_halt_machine(self, attack):
        """§5.2: Miralis stops the machine on an illegal firmware action."""
        system, _ = build_attack_system(
            attack, virtualized=True, offload=_SANDBOXED_OFFLOAD
        )
        reason = system.run()
        assert "miralis" in reason and (
            "denied" in reason or "monitor memory" in reason
        ), reason
        assert system.miralis.violations

    def test_os_memory_intact_after_write_attempt(self):
        system, secret_address = build_attack_system(
            "write_os_memory", virtualized=True, offload=_SANDBOXED_OFFLOAD
        )
        system.run()
        assert system.machine.ram.read(secret_address, 8) == OS_SECRET

    def test_register_exfiltration_blocked_by_scrubbing(self):
        system, _ = build_attack_system(
            "register_exfiltration", virtualized=True, offload=_SANDBOXED_OFFLOAD
        )
        system.run()
        outcome = system.firmware.outcome
        # set_timer's allow-list exposes only a0: s1 reads as zero.
        assert outcome.leaked_value == 0

    def test_smode_csr_confidentiality(self):
        """sscratch is scrubbed: the OS's S-CSR never reaches the firmware."""
        system, _ = build_attack_system(
            "steal_smode_csrs", virtualized=True, offload=_SANDBOXED_OFFLOAD
        )
        system.run()
        outcome = system.firmware.outcome
        assert outcome.attempted
        assert outcome.leaked_value != 0x5EC12E7_0BA5E
        assert not outcome.succeeded

    def test_stvec_corruption_does_not_reach_os(self):
        """The firmware may scribble on its *virtual* stvec; the OS's real
        trap vector is restored from the saved OS context on the switch."""
        seen = {}

        def workload(kernel, ctx):
            ctx.csrw(c.CSR_STVEC, kernel.trap_vector)
            kernel.sbi_call(ctx, TRIGGER_EID, 0)
            seen["stvec"] = ctx.csrr(c.CSR_STVEC)

        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=MaliciousFirmware,
            workload=workload,
            policy=FirmwareSandboxPolicy(
                extra_allowed_regions=[(0x1000_0000, 0x100)]
            ),
            offload=False,
            firmware_kwargs={"attack": "corrupt_smode_csrs"},
        )
        system.run()
        assert system.firmware.outcome.attempted
        kernel_vector = memory_regions(VISIONFIVE2)["kernel"].base + 0x100
        assert seen["stvec"] == kernel_vector


class TestSandboxLifecycle:
    def test_locks_after_first_s_mode_entry(self):
        policy = FirmwareSandboxPolicy(
            extra_allowed_regions=[(0x1000_0000, 0x100)]
        )
        system = build_virtualized(VISIONFIVE2, policy=policy)
        assert not policy.locked[0]
        system.run()
        assert policy.locked[0]
        assert policy.os_image_hash

    def test_boot_time_os_memory_access_allowed(self):
        """Firmware loads the next stage into OS memory before lock-down."""
        policy = FirmwareSandboxPolicy(
            extra_allowed_regions=[(0x1000_0000, 0x100)]
        )
        system = build_virtualized(VISIONFIVE2, policy=policy)
        reason = system.run()
        assert "reset" in reason  # clean shutdown, no violation
        kernel_base = memory_regions(VISIONFIVE2)["kernel"].base
        assert system.machine.ram.read(kernel_base + 0x40, 8) == 0x6F5A_0001

    def test_image_hash_stable(self):
        hashes = []
        for _ in range(2):
            policy = FirmwareSandboxPolicy(
                extra_allowed_regions=[(0x1000_0000, 0x100)]
            )
            system = build_virtualized(VISIONFIVE2, policy=policy)
            system.run()
            hashes.append(policy.os_image_hash)
        assert hashes[0] == hashes[1]

    def test_benign_firmware_unaffected(self):
        """§8.2: sandboxing had 'surprisingly little consequences'."""
        results = {}

        def workload(kernel, ctx):
            results["time"] = kernel.read_time(ctx)
            kernel.sbi_send_ipi(ctx, 1, 0)
            base = kernel.region.base + 0x6000
            ctx.store(base + 1, 0xAB, size=2)
            results["misaligned"] = ctx.load(base + 1, size=2)

        policy = FirmwareSandboxPolicy(
            extra_allowed_regions=[(0x1000_0000, 0x100)]
        )
        system = build_virtualized(
            VISIONFIVE2, workload=workload, policy=policy, offload=False
        )
        reason = system.run()
        assert "reset" in reason
        assert results["misaligned"] == 0xAB
        # Misaligned emulation happened inside the policy (paper: "we thus
        # simply implemented the misaligned emulation directly in the
        # policy").
        assert policy.emulated_misaligned >= 2
