"""Miralis internals exercised through full-system flows."""

import pytest

from repro.core.vcpu import World
from repro.firmware.base import BaseFirmware
from repro.isa import constants as c
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


class TestVirtualClintThroughFirmware:
    def test_firmware_mtime_read_is_emulated(self):
        """The firmware reading CLINT mtime goes through the vCLINT."""
        system = build_virtualized(VISIONFIVE2)
        system.run()
        assert system.miralis.vclint.accesses > 0

    def test_firmware_timer_programs_physical_clint(self):
        seen = {}

        def workload(kernel, ctx):
            now = kernel.read_time(ctx)
            # Force the firmware (not the fast path) to program the timer.
            miralis = system.miralis
            miralis.config = miralis.config  # (offload disabled below)
            kernel.sbi_set_timer(ctx, now + 123_456)
            seen["virtual"] = miralis.vclint.mtimecmp[0]
            seen["physical"] = kernel.machine.clint.mtimecmp[0]

        system = build_virtualized(VISIONFIVE2, workload=workload,
                                   offload=False)
        system.run()
        assert seen["virtual"] == seen["physical"]
        assert seen["virtual"] != (1 << 64) - 1


class TestVirtualInterruptInjection:
    def test_mti_injected_into_firmware_without_offload(self):
        """The full §4.3 multiplexing loop: OS arms timer via firmware,
        physical MTI arrives, Miralis injects a virtual MTI, the firmware's
        handler raises STIP, the OS's S handler finally runs."""
        seen = {}

        def workload(kernel, ctx):
            machine = kernel.machine
            now = kernel.read_time(ctx)
            kernel.sbi_set_timer(ctx, now + 80)
            ctx.csrs(c.CSR_SIE, c.MIP_STIP)
            before = kernel.timer_ticks
            while kernel.timer_ticks == before:
                ctx.compute(400)
            seen["ticks"] = kernel.timer_ticks - before
            # The injected MTI's event carries the *final* handler: the
            # firmware classified it as irq:7.  The world-switch counter
            # proves it got there by re-injection, not natively.
            seen["world_switches"] = machine.stats.world_switches
            seen["virq"] = [
                event for event in machine.stats.events
                if event.is_interrupt and event.handler == "firmware"
                and event.detail == f"irq:{c.IRQ_MTI}"
            ]

        system = build_virtualized(VISIONFIVE2, workload=workload,
                                   offload=False)
        system.run()
        assert seen["ticks"] >= 1
        assert seen["world_switches"] >= 1
        assert seen["virq"], "the MTI must have been re-injected into vM"

    def test_firmware_wfi_waits_for_virtual_timer(self):
        """vM-mode wfi is emulated: time advances to the virtual deadline."""
        seen = {}

        class WfiFirmware(BaseFirmware):
            BOOT_INIT_INSTRUCTIONS = 0

            def boot(self, ctx):
                machine = self.machine
                ctx.csrw(c.CSR_MTVEC, self.trap_vector)
                now = ctx.load(machine.clint.mtime_address, size=8)
                ctx.store(machine.clint.mtimecmp_address(0), now + 500, size=8)
                ctx.csrw(c.CSR_MIE, c.MIP_MTIP)
                ctx.csrs(c.CSR_MSTATUS, c.MSTATUS_MIE)
                ctx.wfi()
                later = ctx.load(machine.clint.mtime_address, size=8)
                seen["waited"] = later - now
                machine.halt("wfi done")

            def handle_trap(self, ctx):
                ctx.store(
                    self.machine.clint.mtimecmp_address(0), (1 << 64) - 1,
                    size=8,
                )
                ctx.mret()

        system = build_virtualized(VISIONFIVE2, firmware_class=WfiFirmware)
        reason = system.run()
        assert "wfi done" in reason
        assert seen["waited"] >= 500


class TestViolationHandling:
    def test_halt_on_violation_default(self):
        from repro.firmware.malicious import MaliciousFirmware, TRIGGER_EID
        from repro.policy.sandbox import FirmwareSandboxPolicy
        from repro.system import memory_regions

        regions = memory_regions(VISIONFIVE2)

        def workload(kernel, ctx):
            kernel.sbi_call(ctx, TRIGGER_EID, 0)

        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=MaliciousFirmware,
            workload=workload,
            policy=FirmwareSandboxPolicy(
                extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
            ),
            offload=False,
            firmware_kwargs={
                "attack": "read_os_memory",
                "os_secret_address": regions["kernel"].base + 0x2000,
            },
        )
        reason = system.run()
        assert "denied" in reason
        assert system.miralis.violations

    def test_log_and_continue_mode(self):
        """§5.2's production behaviour: log the violation, neutralize the
        access, keep the machine running."""
        from repro.core.config import MiralisConfig
        from repro.core.miralis import Miralis
        from repro.firmware.malicious import MaliciousFirmware, TRIGGER_EID
        from repro.hart.machine import Machine
        from repro.os_model.kernel import KernelProgram
        from repro.policy.sandbox import FirmwareSandboxPolicy
        from repro.system import memory_regions

        machine = Machine(VISIONFIVE2)
        regions = memory_regions(VISIONFIVE2)
        secret = 0x5EC12E7_BEEF
        seen = {}

        def workload(kernel, ctx):
            ctx.store(regions["kernel"].base + 0x2000, secret, size=8)
            kernel.sbi_call(ctx, TRIGGER_EID, 0)
            seen["alive"] = kernel.read_time(ctx)

        kernel = KernelProgram("kernel", regions["kernel"], machine,
                               workload=workload)
        firmware = MaliciousFirmware(
            "fw", regions["firmware"], machine,
            kernel_entry=kernel.entry_point,
            attack="read_os_memory",
            os_secret_address=regions["kernel"].base + 0x2000,
        )
        miralis = Miralis(
            machine, regions["miralis"], firmware,
            MiralisConfig(halt_on_violation=False),
            FirmwareSandboxPolicy(
                extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
            ),
        )
        machine.register(firmware)
        machine.register(kernel)
        machine.register(miralis)
        reason = machine.boot(entry=miralis.region.base)
        assert "reset" in reason  # clean shutdown despite the attack
        assert miralis.violations  # ...which was logged
        assert seen["alive"] > 0
        # The blocked load returned an arbitrary value, not the secret.
        assert firmware.outcome.leaked_value != secret


class TestWorldTracking:
    def test_boot_starts_in_firmware_world(self):
        system = build_virtualized(VISIONFIVE2)
        assert system.miralis.world[0] == World.FIRMWARE

    def test_emulation_count_grows_with_boot(self):
        system = build_virtualized(VISIONFIVE2)
        system.run()
        # PMP probing alone costs dozens of emulated CSR instructions.
        assert system.miralis.emulation_count > 40
