"""Q1 (§8.2): Miralis virtualizes unmodified firmware.

Each firmware model runs the same code natively in M-mode and deprivileged
in vM-mode; behaviour must match.  RustSBI's self-test and Zephyr's thread
suite pass virtualized, as the paper reports.
"""

import pytest

from repro.core.vcpu import World
from repro.firmware.rustsbi import RustSbiFirmware
from repro.firmware.zephyr import ZephyrFirmware
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.system import build_native, build_virtualized, memory_regions


def standard_workload(results: dict):
    def workload(kernel, ctx):
        results["impl"] = kernel.sbi_impl_id
        t0 = kernel.read_time(ctx)
        ctx.compute(5_000)
        t1 = kernel.read_time(ctx)
        results["time_monotone"] = t1 > t0
        kernel.print(ctx, "payload\n")
        error, _ = kernel.sbi_send_ipi(ctx, 0b1, 0)
        results["ipi_error"] = error
        ctx.csrr(c.CSR_SSCRATCH)  # delivery point for the self-IPI
        results["ssi"] = kernel.software_interrupts
        base = kernel.region.base + 0x6000
        ctx.store(base + 1, 0xCAFEBABE, size=4)
        results["misaligned"] = ctx.load(base + 1, size=4)
        now = kernel.read_time(ctx)
        kernel.sbi_set_timer(ctx, now + 50)
        ctx.csrs(c.CSR_SIE, c.MIP_STIP)
        ticks = kernel.timer_ticks
        while kernel.timer_ticks == ticks:
            ctx.compute(200)
            ctx.csrr(c.CSR_SSCRATCH)
        results["timer_fired"] = True

    return workload


def run_deployment(builder, platform, **kwargs):
    results = {}
    system = builder(platform, workload=standard_workload(results), **kwargs)
    reason = system.run()
    results["halt"] = reason
    results["console_payload"] = "payload" in system.console_output
    return system, results


class TestOsTransparency:
    """The OS observes identical behaviour native and virtualized (Q1)."""

    @pytest.mark.parametrize("platform", [VISIONFIVE2, PREMIER_P550],
                             ids=["vf2", "p550"])
    @pytest.mark.parametrize("offload", [True, False],
                             ids=["offload", "no-offload"])
    def test_virtualized_matches_native(self, platform, offload):
        _, native = run_deployment(build_native, platform)
        _, virtual = run_deployment(build_virtualized, platform, offload=offload)
        assert native == virtual

    def test_firmware_never_runs_in_m_mode(self):
        """The second-stage firmware executes exclusively deprivileged."""
        modes = []
        system = build_virtualized(VISIONFIVE2)
        original = system.firmware.handle_trap

        def spying_handle_trap(ctx):
            modes.append(ctx.hart.state.mode)
            return original(ctx)

        system.firmware.handle_trap = spying_handle_trap
        original_boot = system.firmware.boot

        def spying_boot(ctx):
            modes.append(ctx.hart.state.mode)
            return original_boot(ctx)

        system.firmware.boot = spying_boot
        system.run()
        assert modes  # firmware actually ran
        assert set(modes) == {c.U_MODE}

    def test_firmware_believes_it_is_m_mode(self):
        """Inside vM-mode the firmware reads M-level CSRs successfully."""
        seen = {}

        class IntrospectingFirmware(RustSbiFirmware):
            def platform_init(self, ctx, hartid):
                seen["mhartid"] = ctx.csrr(c.CSR_MHARTID)
                seen["misa"] = ctx.csrr(c.CSR_MISA)
                seen["physical_mode"] = ctx.hart.state.mode

        system = build_virtualized(
            VISIONFIVE2, firmware_class=IntrospectingFirmware
        )
        system.run()
        assert seen["physical_mode"] == c.U_MODE
        assert seen["misa"] == VISIONFIVE2.misa
        assert seen["mhartid"] == 0

    def test_no_overhead_during_direct_execution(self):
        """§3.4: a VFM introduces no traps during pure OS compute."""
        def workload(kernel, ctx):
            kernel.machine.stats.reset()
            ctx.compute(1_000_000)
            kernel.machine.compute_traps = kernel.machine.stats.total_traps

        system = build_virtualized(VISIONFIVE2, workload=workload)
        system.run()
        assert system.machine.compute_traps == 0


class TestRustSbiVirtualized:
    def test_self_test_passes_virtualized(self):
        failures = {}

        class TestedRustSbi(RustSbiFirmware):
            def boot(self, ctx):
                ctx.csrw(c.CSR_MTVEC, self.trap_vector)
                failures["list"] = self.self_test(ctx)
                self.machine.halt("self-test complete")

        system = build_virtualized(VISIONFIVE2, firmware_class=TestedRustSbi)
        reason = system.run()
        assert "self-test complete" in reason
        assert failures["list"] == []
        # The test suite genuinely exercised the emulator.
        assert system.miralis.emulation_count > 20


class TestZephyrVirtualized:
    def test_suite_passes_virtualized(self):
        from repro.core.config import MiralisConfig
        from repro.core.miralis import Miralis
        from repro.policy.default import DefaultPolicy

        machine = Machine(VISIONFIVE2)
        regions = memory_regions(VISIONFIVE2)
        zephyr = ZephyrFirmware("zephyr", regions["firmware"], machine,
                                num_ticks=5)
        miralis = Miralis(
            machine=machine,
            region=regions["miralis"],
            firmware=zephyr,
            config=MiralisConfig(),
            policy=DefaultPolicy(),
        )
        machine.register(zephyr)
        machine.register(miralis)
        reason = machine.boot(entry=miralis.region.base)
        assert "complete" in reason
        assert zephyr.suite_passed(), zephyr.test_log
        # The RTOS timer ticks were delivered as virtual M interrupts.
        assert zephyr.ticks >= 5
        assert miralis.emulation_count > 0


class TestClosedBinaryFirmware:
    """§8.2's Star64 experiment: the firmware need not be open/known.

    Modelled by a firmware subclass whose behaviour the monitor has no
    special knowledge of (an opaque vendor blob with odd CSR habits).
    """

    def test_opaque_firmware_virtualizes(self):
        class OpaqueVendorBlob(RustSbiFirmware):
            BANNER = "proprietary blob 164kB"

            def platform_init(self, ctx, hartid):
                # Unusual but legal M-mode behaviour: scratch-register
                # dances and repeated delegation rewrites.
                for i in range(8):
                    ctx.csrw(c.CSR_MSCRATCH, i * 0x1111)
                    ctx.csrr(c.CSR_MSCRATCH)
                ctx.csrw(c.CSR_MEDELEG, 0)
                ctx.csrw(c.CSR_MEDELEG, (1 << 64) - 1)

        results = {}
        system = build_virtualized(
            VISIONFIVE2,
            firmware_class=OpaqueVendorBlob,
            workload=standard_workload(results),
        )
        system.run()
        assert results["time_monotone"]
        assert results["timer_fired"]


class TestWorldSwitchAccounting:
    def test_offload_reduces_world_switches(self):
        def workload(kernel, ctx):
            for _ in range(50):
                kernel.read_time(ctx)

        with_offload = build_virtualized(VISIONFIVE2, workload=workload)
        with_offload.run()
        without = build_virtualized(VISIONFIVE2, workload=workload,
                                    offload=False)
        without.run()
        assert with_offload.machine.stats.world_switches < \
            without.machine.stats.world_switches
        assert with_offload.miralis.offload.hits["time-read"] >= 50

    def test_world_state_tracks_execution(self):
        seen = {}

        def workload(kernel, ctx):
            seen["world"] = kernel.machine and None
            miralis = system.miralis
            seen["during_os"] = miralis.world[0]

        system = build_virtualized(VISIONFIVE2, workload=workload)
        system.run()
        assert seen["during_os"] == World.OS
