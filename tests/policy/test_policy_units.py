"""Policy-module unit behaviours: budgets, limits, PMP provisioning."""

import pytest

from repro.core.vcpu import World
from repro.policy.keystone import (
    ERR_NO_FREE_RESOURCE,
    EXT_KEYSTONE,
    EnclaveApp,
    FN_CREATE_ENCLAVE,
    FN_DESTROY_ENCLAVE,
    KeystonePolicy,
)
from repro.hart.program import Region
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized, memory_regions


def build_two_enclave_system():
    policy = KeystonePolicy()
    outcome = {}

    def workload(kernel, ctx):
        regions = memory_regions(VISIONFIVE2)
        base_a = regions["enclave"].base
        base_b = regions["enclave"].base + 0x10_0000
        outcome["a"] = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base_a)
        outcome["b"] = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base_b)
        outcome["c"] = kernel.sbi_call(ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, base_a)
        hook = outcome.get("hook")
        if hook:
            hook(kernel, ctx)

    system = build_virtualized(VISIONFIVE2, workload=workload, policy=policy)
    regions = memory_regions(VISIONFIVE2)
    for index, offset in enumerate((0, 0x10_0000)):
        app = EnclaveApp(
            f"app{index}",
            Region(f"enclave{index}", regions["enclave"].base + offset,
                   0x10_0000),
            system.machine,
            lambda app, ctx: 0,
        )
        policy.register_app(app)
    return system, policy, outcome


class TestKeystoneLimits:
    def test_two_enclaves_allowed_third_rejected(self):
        system, policy, outcome = build_two_enclave_system()
        system.run()
        assert outcome["a"][0] == 0
        assert outcome["b"][0] == 0
        assert outcome["c"][0] == ERR_NO_FREE_RESOURCE

    def test_both_live_enclaves_pmp_protected(self):
        system, policy, outcome = build_two_enclave_system()

        def hook(kernel, ctx):
            entries = policy.pmp_entries(World.OS, 0)
            outcome["entries"] = entries

        outcome["hook"] = hook
        system.run()
        assert len(outcome["entries"]) == 2  # one deny entry per enclave

    def test_destroy_frees_a_slot(self):
        system, policy, outcome = build_two_enclave_system()

        def hook(kernel, ctx):
            regions = memory_regions(VISIONFIVE2)
            _, eid_a = outcome["a"]
            kernel.sbi_call(ctx, EXT_KEYSTONE, FN_DESTROY_ENCLAVE, eid_a)
            outcome["after_destroy"] = kernel.sbi_call(
                ctx, EXT_KEYSTONE, FN_CREATE_ENCLAVE, regions["enclave"].base
            )

        outcome["hook"] = hook
        system.run()
        assert outcome["after_destroy"][0] == 0

    def test_policy_budget_matches_figure5(self):
        system, policy, _ = build_two_enclave_system()
        # 8 physical - 2 guards - 2 policy - zero - all-memory = 2 virtual.
        assert policy.num_pmp_entries() == 2
        assert system.miralis.vpmp.virtual_count == 2


class TestAceLimits:
    def test_tvm_budget(self):
        from repro.policy.ace import (
            AcePolicy,
            ConfidentialVm,
            ERR_NOT_RUNNABLE,
            EXT_COVH,
            FN_PROMOTE_TO_TVM,
        )
        from repro.spec.platform import QEMU_VIRT

        policy = AcePolicy()
        outcome = {}

        def workload(kernel, ctx):
            regions = memory_regions(QEMU_VIRT)
            base_a = regions["enclave"].base
            base_b = regions["enclave"].base + 0x10_0000
            outcome["a"] = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base_a)
            outcome["b"] = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base_b)
            outcome["c"] = kernel.sbi_call(ctx, EXT_COVH, FN_PROMOTE_TO_TVM, base_a)

        system = build_virtualized(QEMU_VIRT, workload=workload, policy=policy)
        regions = memory_regions(QEMU_VIRT)
        for index, offset in enumerate((0, 0x10_0000)):
            vm = ConfidentialVm(
                f"vm{index}",
                Region(f"cvm{index}", regions["enclave"].base + offset,
                       0x10_0000),
                system.machine,
                lambda vm, ctx: None,
            )
            policy.register_vm(vm)
        system.run()
        assert outcome["a"][0] == 0
        assert outcome["b"][0] == 0
        assert outcome["c"][0] == ERR_NOT_RUNNABLE & ((1 << 64) - 1)


class TestSandboxProvisioning:
    def test_entries_only_in_locked_firmware_world(self):
        from repro.policy.sandbox import FirmwareSandboxPolicy

        policy = FirmwareSandboxPolicy()
        system = build_virtualized(VISIONFIVE2, policy=policy)
        assert policy.pmp_entries(World.FIRMWARE, 0) == []  # pre-lock
        system.run()
        locked_entries = policy.pmp_entries(World.FIRMWARE, 0)
        assert len(locked_entries) == 2  # allow firmware region + deny all
        assert policy.pmp_entries(World.OS, 0) == []

    def test_extra_allowed_regions_add_entries(self):
        from repro.policy.sandbox import FirmwareSandboxPolicy

        policy = FirmwareSandboxPolicy(
            extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
        )
        assert policy.num_pmp_entries() == 3
        system = build_virtualized(
            VISIONFIVE2.with_overrides(pmp_count=16), policy=policy
        )
        system.run()
        assert len(policy.pmp_entries(World.FIRMWARE, 0)) == 3

    def test_default_access_follows_lock_state(self):
        from repro.policy.sandbox import FirmwareSandboxPolicy

        policy = FirmwareSandboxPolicy()
        assert policy.allow_firmware_default_access()
        policy.locked[0] = True
        assert not policy.allow_firmware_default_access()
