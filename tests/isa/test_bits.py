"""Unit and property tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import bits
from repro.isa.constants import XMASK

u64 = st.integers(min_value=0, max_value=XMASK)
any_int = st.integers(min_value=-(1 << 80), max_value=1 << 80)


class TestTruncation:
    def test_to_u64_identity_for_in_range(self):
        assert bits.to_u64(42) == 42
        assert bits.to_u64(XMASK) == XMASK

    def test_to_u64_wraps(self):
        assert bits.to_u64(1 << 64) == 0
        assert bits.to_u64(-1) == XMASK

    @given(any_int)
    def test_to_u64_always_in_range(self, value):
        assert 0 <= bits.to_u64(value) <= XMASK

    def test_to_u32(self):
        assert bits.to_u32(0x1_0000_0001) == 1


class TestSignedness:
    def test_to_signed_positive(self):
        assert bits.to_signed(5) == 5

    def test_to_signed_negative(self):
        assert bits.to_signed(XMASK) == -1
        assert bits.to_signed(1 << 63) == -(1 << 63)

    def test_to_signed_width(self):
        assert bits.to_signed(0xFF, width=8) == -1
        assert bits.to_signed(0x7F, width=8) == 127

    @given(u64)
    def test_sign_roundtrip(self, value):
        assert bits.to_u64(bits.to_signed(value)) == value

    def test_sign_extend(self):
        assert bits.sign_extend(0x80, 8) == XMASK & ~0x7F
        assert bits.sign_extend(0x7F, 8) == 0x7F

    def test_zero_extend(self):
        assert bits.zero_extend(0xFFFF, 8) == 0xFF


class TestFields:
    def test_bit(self):
        assert bits.bit(0b100, 2) == 1
        assert bits.bit(0b100, 1) == 0

    def test_bits_range(self):
        assert bits.bits(0xABCD, 15, 12) == 0xA
        assert bits.bits(0xABCD, 3, 0) == 0xD

    def test_bits_invalid_range(self):
        with pytest.raises(ValueError):
            bits.bits(0, 0, 1)

    def test_set_bits(self):
        assert bits.set_bits(0, 7, 4, 0xF) == 0xF0

    def test_set_field_shifted_mask(self):
        from repro.isa.constants import MSTATUS_MPP

        assert bits.set_field(0, MSTATUS_MPP, 3) == MSTATUS_MPP

    def test_get_field(self):
        from repro.isa.constants import MSTATUS_MPP

        assert bits.get_field(MSTATUS_MPP, MSTATUS_MPP) == 3

    @given(u64, st.integers(min_value=0, max_value=3))
    def test_set_then_get_field(self, value, field):
        from repro.isa.constants import MSTATUS_MPP

        updated = bits.set_field(value, MSTATUS_MPP, field)
        assert bits.get_field(updated, MSTATUS_MPP) == field
        # Other bits untouched.
        assert updated & ~MSTATUS_MPP == value & ~MSTATUS_MPP


class TestAlignment:
    @pytest.mark.parametrize("address,size,expected", [
        (0, 8, True), (4, 8, False), (4, 4, True), (2, 4, False),
        (1, 1, True), (6, 2, True), (7, 2, False),
    ])
    def test_is_aligned(self, address, size, expected):
        assert bits.is_aligned(address, size) is expected


class TestNapot:
    def test_encode_decode_roundtrip(self):
        encoded = bits.napot_encode(0x8000_0000, 0x10_0000)
        base, size = bits.napot_range(encoded)
        assert (base, size) == (0x8000_0000, 0x10_0000)

    def test_smallest_region(self):
        encoded = bits.napot_encode(0x1000, 8)
        assert bits.napot_range(encoded) == (0x1000, 8)

    def test_encode_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bits.napot_encode(0, 24)

    def test_encode_rejects_too_small(self):
        with pytest.raises(ValueError):
            bits.napot_encode(0, 4)

    def test_encode_rejects_misaligned_base(self):
        with pytest.raises(ValueError):
            bits.napot_encode(0x1004, 0x1000)

    @given(
        st.integers(min_value=3, max_value=40),
        st.integers(min_value=0, max_value=1 << 20),
    )
    def test_napot_roundtrip_property(self, log_size, block):
        size = 1 << log_size
        base = block * size
        encoded = bits.napot_encode(base, size)
        assert bits.napot_range(encoded) == (base, size)

    def test_all_ones_covers_huge_range(self):
        base, size = bits.napot_range((1 << 54) - 1)
        assert base == 0
        assert size == 1 << 57
