"""Tests for the two-pass assembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.asm import Assembler, reg
from repro.isa.decoder import decode
from repro.spec.platform import VISIONFIVE2
from repro.spec.state import MachineState
from repro.spec.step import execute_instruction


class TestRegisterNames:
    def test_abi_names(self):
        assert reg("zero") == 0
        assert reg("ra") == 1
        assert reg("sp") == 2
        assert reg("a0") == 10
        assert reg("t6") == 31

    def test_x_names(self):
        assert reg("x0") == 0
        assert reg("x31") == 31

    def test_fp_alias(self):
        assert reg("fp") == reg("s0") == 8

    def test_numbers_pass_through(self):
        assert reg(7) == 7

    def test_bad_name(self):
        with pytest.raises(ValueError):
            reg("q7")

    def test_bad_number(self):
        with pytest.raises(ValueError):
            reg(32)


class TestLabels:
    def test_backward_branch(self):
        asm = Assembler(base=0x1000)
        asm.label("top")
        asm.nop()
        asm.j("top")
        instrs = asm.instructions()
        assert instrs[1].imm == -4

    def test_forward_branch(self):
        asm = Assembler()
        asm.beq("a0", "zero", "done")
        asm.nop()
        asm.label("done")
        asm.nop()
        assert asm.instructions()[0].imm == 8

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(ValueError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.j("nowhere")
        with pytest.raises(ValueError):
            asm.instructions()

    def test_address_of(self):
        asm = Assembler(base=0x8000_0000)
        asm.nop()
        asm.label("here")
        asm.nop()
        assert asm.address_of("here") == 0x8000_0004


class TestBinary:
    def test_binary_little_endian(self):
        asm = Assembler()
        asm.nop()
        assert asm.binary() == (0x13).to_bytes(4, "little")

    def test_all_words_decodable(self):
        asm = Assembler()
        asm.li("a0", 123456789)
        asm.csrr("t0", 0x300)
        asm.sfence_vma()
        asm.fence()
        for word in asm.assemble():
            decode(word)  # must not raise


class TestLi:
    """The li expansion must place the exact constant in the register."""

    def _run_li(self, value: int) -> int:
        asm = Assembler()
        asm.li("a0", value)
        state = MachineState(VISIONFIVE2)
        for word in asm.assemble():
            execute_instruction(state, decode(word))
        return state.get_xreg(10)

    @pytest.mark.parametrize("value", [
        0, 1, -1 & ((1 << 64) - 1), 2047, 2048, -2048 & ((1 << 64) - 1),
        0x7FFFFFFF, 0x80000000, 0xFFFFFFFF, 0x1_0000_0000,
        0xDEAD_BEEF_CAFE_F00D, (1 << 63), (1 << 64) - 1, 0x8000_0000_0000_0001,
    ])
    def test_boundary_constants(self, value):
        assert self._run_li(value) == value & ((1 << 64) - 1)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_li_property(self, value):
        assert self._run_li(value) == value


class TestPseudoInstructions:
    def test_nop_is_addi(self):
        asm = Assembler()
        asm.nop()
        instr = asm.instructions()[0]
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.imm) == ("addi", 0, 0, 0)

    def test_mv(self):
        asm = Assembler()
        asm.mv("a1", "a0")
        instr = asm.instructions()[0]
        assert (instr.mnemonic, instr.rd, instr.rs1) == ("addi", 11, 10)

    def test_csrw_discards_result(self):
        asm = Assembler()
        asm.csrw(0x300, "t0")
        assert asm.instructions()[0].rd == 0

    def test_ret(self):
        asm = Assembler()
        asm.ret()
        instr = asm.instructions()[0]
        assert (instr.mnemonic, instr.rd, instr.rs1) == ("jalr", 0, 1)
