"""Encoder/decoder tests: the two must be exact inverses.

This mirrors the paper's Table 2 "instruction decoder" verification task
at unit-test granularity; the exhaustive sweep lives in
``tests/verif/test_decoder_check.py``.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.decoder import decode
from repro.isa.encoding import EncodingError, encode
from repro.isa.instructions import IllegalInstructionError, Instruction

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)
shamt6 = st.integers(min_value=0, max_value=63)
shamt5 = st.integers(min_value=0, max_value=31)
csr12 = st.integers(min_value=0, max_value=0xFFF)


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr))


class TestRoundTrips:
    @given(regs, regs, imm12)
    def test_addi(self, rd, rs1, imm):
        assert roundtrip(Instruction("addi", rd=rd, rs1=rs1, imm=imm)) == \
            Instruction("addi", rd=rd, rs1=rs1, imm=imm)

    @given(regs, regs, regs)
    def test_r_type(self, rd, rs1, rs2):
        for mnemonic in ("add", "sub", "sll", "slt", "sltu", "xor", "srl",
                         "sra", "or", "and", "mul", "mulh", "div", "rem",
                         "addw", "subw", "mulw", "divw", "remuw"):
            instr = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
            assert roundtrip(instr) == instr

    @given(regs, regs, shamt6)
    def test_shifts(self, rd, rs1, shamt):
        for mnemonic in ("slli", "srli", "srai"):
            instr = Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(instr) == instr

    @given(regs, regs, shamt5)
    def test_word_shifts(self, rd, rs1, shamt):
        for mnemonic in ("slliw", "srliw", "sraiw"):
            instr = Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt)
            assert roundtrip(instr) == instr

    @given(regs, regs, imm12)
    def test_loads(self, rd, rs1, imm):
        for mnemonic in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"):
            instr = Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
            assert roundtrip(instr) == instr

    @given(regs, regs, imm12)
    def test_stores(self, rs1, rs2, imm):
        for mnemonic in ("sb", "sh", "sw", "sd"):
            instr = Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
            assert roundtrip(instr) == instr

    @given(regs, regs, st.integers(min_value=-2048, max_value=2046))
    def test_branches(self, rs1, rs2, half_offset):
        offset = half_offset * 2
        for mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            instr = Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=offset)
            assert roundtrip(instr) == instr

    @given(regs, st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_jal(self, rd, half_offset):
        instr = Instruction("jal", rd=rd, imm=half_offset * 2)
        assert roundtrip(instr) == instr

    @given(regs, regs, imm12)
    def test_jalr(self, rd, rs1, imm):
        instr = Instruction("jalr", rd=rd, rs1=rs1, imm=imm)
        assert roundtrip(instr) == instr

    @given(regs, st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_lui_auipc(self, rd, field):
        for mnemonic in ("lui", "auipc"):
            instr = Instruction(mnemonic, rd=rd, imm=field)
            decoded = roundtrip(instr)
            assert decoded.mnemonic == mnemonic
            assert decoded.rd == rd
            assert decoded.imm == field

    @given(regs, regs, csr12)
    def test_csr_register_forms(self, rd, rs1, csr):
        for mnemonic in ("csrrw", "csrrs", "csrrc"):
            instr = Instruction(mnemonic, rd=rd, rs1=rs1, csr=csr)
            assert roundtrip(instr) == instr

    @given(regs, shamt5, csr12)
    def test_csr_immediate_forms(self, rd, zimm, csr):
        for mnemonic in ("csrrwi", "csrrsi", "csrrci"):
            instr = Instruction(mnemonic, rd=rd, rs1=zimm, csr=csr)
            assert roundtrip(instr) == instr

    def test_system_instructions(self):
        for mnemonic in ("ecall", "ebreak", "mret", "sret", "wfi", "fence.i"):
            assert roundtrip(Instruction(mnemonic)) == Instruction(mnemonic)

    @given(regs, regs)
    def test_sfence_vma(self, rs1, rs2):
        instr = Instruction("sfence.vma", rs1=rs1, rs2=rs2)
        assert roundtrip(instr) == instr


class TestKnownEncodings:
    """Golden encodings cross-checked against the RISC-V spec examples."""

    @pytest.mark.parametrize("instr,word", [
        (Instruction("mret"), 0x30200073),
        (Instruction("sret"), 0x10200073),
        (Instruction("wfi"), 0x10500073),
        (Instruction("ecall"), 0x00000073),
        (Instruction("ebreak"), 0x00100073),
        (Instruction("addi", rd=0, rs1=0, imm=0), 0x00000013),  # nop
        (Instruction("csrrs", rd=5, rs1=0, csr=0x300), 0x300022F3),
        (Instruction("csrrw", rd=0, rs1=0, csr=0x340), 0x34001073),
        (Instruction("jalr", rd=0, rs1=1, imm=0), 0x00008067),  # ret
        (Instruction("ld", rd=10, rs1=2, imm=16), 0x01013503),
        (Instruction("sd", rs1=2, rs2=10, imm=8), 0x00A13423),
    ])
    def test_golden(self, instr, word):
        assert encode(instr) == word
        assert decode(word) == instr


class TestIllegalDecodes:
    def test_compressed_rejected(self):
        with pytest.raises(IllegalInstructionError):
            decode(0x0001)  # 16-bit encoding space

    def test_zero_word(self):
        with pytest.raises(IllegalInstructionError):
            decode(0x0000_0000)

    def test_all_ones(self):
        with pytest.raises(IllegalInstructionError):
            decode(0xFFFF_FFFF)

    def test_bad_opcode(self):
        with pytest.raises(IllegalInstructionError):
            decode(0x0000007B)  # unused opcode

    def test_bad_shift_funct(self):
        # slli with non-zero funct6 is reserved.
        word = encode(Instruction("slli", rd=1, rs1=1, imm=1)) | (1 << 30)
        with pytest.raises(IllegalInstructionError):
            decode(word)

    def test_bad_system(self):
        with pytest.raises(IllegalInstructionError):
            decode(0x7FF00073)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decode_never_crashes_and_reencodes(self, word):
        """Any word either raises cleanly or decodes to a re-encodable form.

        Re-encoding may differ in don't-care bits (e.g. fence operand
        fields), but must itself decode back to the same instruction.
        """
        try:
            instr = decode(word)
        except IllegalInstructionError:
            return
        try:
            word2 = encode(instr)
        except EncodingError:
            pytest.fail(f"decoded {instr} from {word:#x} but cannot re-encode")
        assert decode(word2) == instr


class TestEncodingErrors:
    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=32, rs1=0, rs2=0))

    def test_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=5000))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=3))

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instruction("frobnicate"))
