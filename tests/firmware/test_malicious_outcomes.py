"""AttackOutcome bookkeeping under graceful (non-halting) containment.

The original security suite asserts containment with
``halt_on_violation=True`` (bring-up behaviour: the machine stops).  This
suite asserts the *production* behaviour introduced with the watchdog:
the policy denies the access mid-SBI, the monitor neutralizes it, the
machine keeps running — and the firmware-side ``AttackOutcome`` is still
recorded (attempted, not succeeded), while the OS completes its workload.
"""

import pytest

from repro.core.config import MiralisConfig
from repro.firmware.malicious import MaliciousFirmware, TRIGGER_EID
from repro.policy.sandbox import FirmwareSandboxPolicy
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized, memory_regions

OS_SECRET = 0xC0FFEE_15_5EC12E7

#: The three attacks the issue calls out: direct reads/writes of OS
#: memory and a PMP window remap, all denied mid-SBI by the sandbox.
MEMORY_ATTACKS = ("read_os_memory", "write_os_memory", "remap_pmp_window")


def _build(attack: str):
    regions = memory_regions(VISIONFIVE2)
    secret_address = regions["kernel"].base + 0x2000
    completed = []

    def workload(kernel, ctx):
        ctx.store(secret_address, OS_SECRET, size=8)
        kernel.sbi_call(ctx, TRIGGER_EID, 0)
        # Post-attack work: proves the machine survived the denial.
        ctx.store(secret_address + 8, 0x1, size=8)
        completed.append(True)

    system = build_virtualized(
        VISIONFIVE2,
        firmware_class=MaliciousFirmware,
        workload=workload,
        policy=FirmwareSandboxPolicy(
            extra_allowed_regions=[(VISIONFIVE2.uart_base, 0x100)]
        ),
        firmware_kwargs={
            "attack": attack,
            "os_secret_address": secret_address,
            "monitor_address": regions["miralis"].base + 0x100,
        },
        miralis_config=MiralisConfig(
            offload_enabled=False,
            watchdog_enabled=True,
            halt_on_violation=False,
            allowed_vendor_csrs=tuple(VISIONFIVE2.vendor_csrs),
        ),
    )
    return system, secret_address, completed


class TestOutcomeRecordedOnDenial:
    @pytest.mark.parametrize("attack", MEMORY_ATTACKS)
    def test_outcome_recorded_and_contained(self, attack):
        system, _, _ = _build(attack)
        system.run()
        outcome = system.firmware.outcome
        # Even though the policy denied the access mid-SBI, the attempt
        # was recorded and did not succeed.
        assert outcome.attempted, f"{attack} never triggered"
        assert not outcome.succeeded, f"{attack} escaped: {outcome.note}"
        assert system.miralis.violations, "denial left no violation record"

    @pytest.mark.parametrize("attack", MEMORY_ATTACKS)
    def test_machine_survives_denial(self, attack):
        system, secret_address, completed = _build(attack)
        reason = system.run()
        # Graceful containment: no halt-on-violation, the OS finished its
        # workload and shut down normally.
        assert completed, f"OS did not survive {attack} (halt: {reason})"
        assert "sbi system reset" in reason, reason
        assert system.machine.ram.read(secret_address + 8, 8) == 0x1

    def test_read_leaks_nothing(self):
        system, _, _ = _build("read_os_memory")
        system.run()
        # The neutralized load feeds the firmware a constant, never the
        # secret.
        assert system.firmware.outcome.leaked_value != OS_SECRET

    def test_write_leaves_os_memory_intact(self):
        system, secret_address, _ = _build("write_os_memory")
        system.run()
        assert system.machine.ram.read(secret_address, 8) == OS_SECRET

    def test_remap_window_does_not_expose_secret(self):
        system, _, _ = _build("remap_pmp_window")
        system.run()
        outcome = system.firmware.outcome
        assert outcome.leaked_value != OS_SECRET

    @pytest.mark.parametrize("attack", MEMORY_ATTACKS)
    def test_violations_counted_by_watchdog(self, attack):
        system, _, _ = _build(attack)
        system.run()
        # Violation storms are bounded per activation; a single denied
        # attack must not trigger recovery, only be neutralized.
        watchdog = system.miralis.watchdog
        assert watchdog is not None
        assert not watchdog.quarantined[0]
