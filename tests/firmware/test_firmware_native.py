"""Vendor firmware running natively in M-mode (the paper's baseline)."""

import pytest

from repro.firmware.opensbi import OpenSbiFirmware, VisionFive2Firmware
from repro.firmware.rustsbi import RustSbiFirmware
from repro.firmware.zephyr import ZephyrFirmware
from repro.hart.machine import Machine
from repro.hart.program import Region
from repro.isa import constants as c
from repro.sbi import constants as sbi
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.system import build_native, memory_regions


def boot_with_workload(workload, config=VISIONFIVE2, firmware_class=None, **kw):
    system = build_native(config, workload=workload,
                          firmware_class=firmware_class, **kw)
    reason = system.run()
    return system, reason


class TestBootFlow:
    def test_boot_reaches_s_mode_and_shuts_down(self):
        modes = []

        def workload(kernel, ctx):
            modes.append(ctx.mode)

        system, reason = boot_with_workload(workload)
        assert modes == [c.S_MODE]
        assert "reset" in reason

    def test_boot_protocol_registers(self):
        seen = {}

        def workload(kernel, ctx):
            # a0 was the hartid at kernel entry (captured by kernel.boot).
            seen["harts"] = list(kernel.booted_harts)

        system, _ = boot_with_workload(workload)
        assert seen["harts"] == [0]

    def test_console_banner(self):
        system, _ = boot_with_workload(lambda kernel, ctx: None)
        assert "OpenSBI" in system.console_output

    def test_pmp_probe_detects_all_entries(self):
        system, _ = boot_with_workload(lambda kernel, ctx: None)
        assert system.firmware.detected_pmp_count == VISIONFIVE2.pmp_count

    def test_next_stage_loaded_into_os_memory(self):
        system, _ = boot_with_workload(lambda kernel, ctx: None)
        kernel_base = memory_regions(VISIONFIVE2)["kernel"].base
        assert system.machine.ram.read(kernel_base + 0x40, 8) == 0x6F5A_0001

    def test_delegation_configured(self):
        seen = {}

        def workload(kernel, ctx):
            seen["medeleg"] = ctx.hart.state.csr.medeleg
            seen["mideleg"] = ctx.hart.state.csr.mideleg

        _, _ = boot_with_workload(workload)
        assert seen["mideleg"] == c.SIP_MASK
        assert seen["medeleg"] & (1 << c.TrapCause.ECALL_FROM_U)
        # Illegal instructions are NOT delegated: firmware emulates time.
        assert not seen["medeleg"] & (1 << c.TrapCause.ILLEGAL_INSTRUCTION)


class TestSbiInterface:
    def test_base_extension(self):
        seen = {}

        def workload(kernel, ctx):
            seen["impl"] = kernel.sbi_impl_id
            seen["probes"] = dict(kernel.extensions)
            _err, version = kernel.sbi_call(
                ctx, sbi.EXT_BASE, sbi.FN_BASE_GET_SPEC_VERSION
            )
            seen["spec"] = version
            _err, vendor = kernel.sbi_call(
                ctx, sbi.EXT_BASE, sbi.FN_BASE_GET_MVENDORID
            )
            seen["vendor"] = vendor

        _, _ = boot_with_workload(workload)
        assert seen["impl"] == sbi.IMPL_ID_OPENSBI
        assert all(seen["probes"].values())
        assert seen["spec"] == sbi.SBI_SPEC_VERSION_2_0
        assert seen["vendor"] == VISIONFIVE2.mvendorid

    def test_unknown_extension_not_supported(self):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_call(ctx, 0x0BAD_EED5, 0)
            seen["error"] = error

        _, _ = boot_with_workload(workload)
        assert seen["error"] == (-2) & ((1 << 64) - 1)  # ERR_NOT_SUPPORTED

    def test_set_timer_arms_clint_and_fires(self):
        seen = {}

        def workload(kernel, ctx):
            now = kernel.read_time(ctx)
            kernel.sbi_set_timer(ctx, now + 50)
            ctx.csrs(c.CSR_SIE, c.MIP_STIP)
            before = kernel.timer_ticks
            # Busy-wait across the deadline: interrupts are delivered
            # between operations.
            while kernel.timer_ticks == before:
                ctx.compute(100)
                ctx.csrr(c.CSR_SSCRATCH)
            seen["ticks"] = kernel.timer_ticks

        _, _ = boot_with_workload(workload)
        assert seen["ticks"] >= 1

    def test_console_putchar(self):
        def workload(kernel, ctx):
            kernel.print(ctx, "xyz!")

        system, _ = boot_with_workload(workload)
        assert "xyz!" in system.console_output

    def test_debug_console_write(self):
        def workload(kernel, ctx):
            buffer = kernel.region.base + 0x9000
            for index, byte in enumerate(b"dbcn"):
                ctx.store(buffer + index, byte, size=1)
            kernel.sbi_call(
                ctx, sbi.EXT_DBCN, sbi.FN_DBCN_CONSOLE_WRITE, 4, buffer
            )

        system, _ = boot_with_workload(workload)
        assert "dbcn" in system.console_output

    def test_system_reset_halts(self):
        def workload(kernel, ctx):
            pass  # kernel.boot calls shutdown afterwards

        _, reason = boot_with_workload(workload)
        assert "reset" in reason


class TestEmulationPaths:
    def test_time_read_emulated(self):
        seen = {}

        def workload(kernel, ctx):
            t0 = kernel.read_time(ctx)
            ctx.compute(3000)
            t1 = kernel.read_time(ctx)
            seen["t0"], seen["t1"] = t0, t1

        system, _ = boot_with_workload(workload)
        assert seen["t1"] > seen["t0"]
        details = system.machine.stats.detail_counts()
        assert details.get("emulate:time-read", 0) >= 2

    def test_misaligned_load_store_emulated(self):
        seen = {}

        def workload(kernel, ctx):
            base = kernel.region.base + 0x7000
            ctx.store(base + 1, 0xAABBCCDD, size=4)  # misaligned store
            seen["value"] = ctx.load(base + 1, size=4)  # misaligned load

        system, _ = boot_with_workload(workload)
        assert seen["value"] == 0xAABBCCDD
        details = system.machine.stats.detail_counts()
        assert details.get("emulate:misaligned", 0) == 2

    def test_misaligned_handled_in_hardware_on_p550(self):
        seen = {}

        def workload(kernel, ctx):
            base = kernel.region.base + 0x7000
            ctx.store(base + 1, 0xAABBCCDD, size=4)
            seen["value"] = ctx.load(base + 1, size=4)

        system, _ = boot_with_workload(workload, config=PREMIER_P550)
        assert seen["value"] == 0xAABBCCDD
        assert "STORE_ADDRESS_MISALIGNED" not in system.machine.stats.trap_counts

    def test_ipi_to_self_delivers_ssip(self):
        seen = {}

        def workload(kernel, ctx):
            before = kernel.software_interrupts
            kernel.sbi_send_ipi(ctx, 0b1, 0)
            ctx.csrr(c.CSR_SSCRATCH)  # give the interrupt a delivery point
            seen["delta"] = kernel.software_interrupts - before

        _, _ = boot_with_workload(workload)
        assert seen["delta"] == 1

    def test_remote_fence(self):
        seen = {}

        def workload(kernel, ctx):
            error, _ = kernel.sbi_remote_fence_i(ctx, 0b1, 0)
            seen["error"] = error

        _, _ = boot_with_workload(workload)
        assert seen["error"] == 0


class TestVendorFlavours:
    def test_vf2_banner(self):
        system, _ = boot_with_workload(
            lambda kernel, ctx: None, firmware_class=VisionFive2Firmware
        )
        assert "StarFive" in system.console_output

    def test_p550_vendor_csrs_written(self):
        system, _ = boot_with_workload(lambda kernel, ctx: None,
                                       config=PREMIER_P550)
        csr_file = system.machine.harts[0].state.csr
        for vendor_csr in PREMIER_P550.vendor_csrs:
            assert csr_file.read(vendor_csr) == 1

    def test_sbi_counts_accumulate(self):
        def workload(kernel, ctx):
            kernel.read_time(ctx)
            kernel.sbi_send_ipi(ctx, 1, 0)

        system, _ = boot_with_workload(workload)
        assert system.firmware.sbi_counts["ipi.0"] == 1


class TestRustSbiNative:
    def test_self_test_passes(self):
        failures = {}

        class TestedRustSbi(RustSbiFirmware):
            def boot(self, ctx):
                hartid = ctx.csrr(c.CSR_MHARTID)
                ctx.csrw(c.CSR_MTVEC, self.trap_vector)
                failures["list"] = self.self_test(ctx)
                self.machine.halt("self-test complete")

        machine = Machine(VISIONFIVE2)
        firmware = TestedRustSbi(
            "rustsbi", Region("firmware", 0x8000_0000, 0x10_0000), machine
        )
        machine.register(firmware)
        machine.boot(entry=firmware.entry_point)
        assert failures["list"] == []

    def test_impl_id(self):
        seen = {}

        def workload(kernel, ctx):
            seen["impl"] = kernel.sbi_impl_id

        _, _ = boot_with_workload(workload, firmware_class=RustSbiFirmware)
        assert seen["impl"] == sbi.IMPL_ID_RUSTSBI


class TestZephyrNative:
    def test_suite_passes(self):
        machine = Machine(VISIONFIVE2)
        zephyr = ZephyrFirmware(
            "zephyr", Region("firmware", 0x8000_0000, 0x10_0000), machine,
            num_ticks=6,
        )
        machine.register(zephyr)
        reason = machine.boot(entry=zephyr.entry_point)
        assert "complete" in reason
        assert zephyr.suite_passed(), zephyr.test_log
        assert zephyr.ticks >= 6
