"""Fault-injection tracing: every committed injection leaves a trace event,
and quarantine dumps are deterministic (satellite of the tracing PR)."""

import pytest

from repro.faults import run_chaos
from repro.trace import Tracer


def _fault_events(tracer):
    return [e for e in tracer.events() if e.kind == "fault-inject"]


class TestInjectionTracing:
    @pytest.mark.parametrize("plan", ["csr-chaos", "transient-mmio", "decode-flip"])
    def test_every_injection_is_traced(self, plan):
        tracer = Tracer()
        result = run_chaos("opensbi", plan=plan, seed=3, tracer=tracer)
        assert result.injections > 0, f"plan {plan} injected nothing at seed 3"
        events = _fault_events(tracer)
        assert len(events) == result.injections
        for event in events:
            assert event.args["seed"] == 3
            assert event.args["site"] in ("vcsr-write", "mmio", "decode", "stall")

    def test_trace_sites_match_injector_log(self):
        tracer = Tracer()
        result = run_chaos("opensbi", plan="csr-chaos", seed=3, tracer=tracer)
        traced = [(e.args["site"], e.args["index"]) for e in _fault_events(tracer)]
        # The injector patches vcsr-write details after the fact, so match
        # on the (site, decision-index) identity rather than detail text.
        assert result.injections == len(traced)
        assert traced == sorted(traced, key=lambda pair: (pair[0], pair[1]))


class TestQuarantineDumps:
    def _run(self, plan, seed):
        tracer = Tracer()
        result = run_chaos("opensbi", plan=plan, seed=seed, tracer=tracer)
        return result, tracer

    def _quarantining_run(self):
        for seed in range(6):
            result, tracer = self._run("mtvec-smash", seed)
            if result.quarantined:
                return ("mtvec-smash", seed), tracer
        pytest.fail("no mtvec-smash seed in 0..5 quarantined")

    def test_quarantine_dumps_last_events(self):
        _, tracer = self._quarantining_run()
        assert tracer.quarantine_dumps
        reason, events = tracer.quarantine_dumps[0]
        assert reason
        assert 0 < len(events) <= 64
        assert events[-1].seq <= tracer.total_events

    def test_quarantine_dump_is_deterministic(self):
        (plan, seed), first = self._quarantining_run()
        _, second = self._run(plan, seed)
        assert len(first.quarantine_dumps) == len(second.quarantine_dumps)
        for (reason_a, events_a), (reason_b, events_b) in zip(
            first.quarantine_dumps, second.quarantine_dumps
        ):
            assert reason_a == reason_b
            assert [e.to_tuple() for e in events_a] == [
                e.to_tuple() for e in events_b
            ]

    def test_whole_trace_is_deterministic(self):
        _, first = self._run("stall-loop", 1)
        _, second = self._run("stall-loop", 1)
        assert first.counts == second.counts
        assert [e.to_tuple() for e in first.events()] == [
            e.to_tuple() for e in second.events()
        ]
