"""Unit tests for the trace subsystem: ring buffer, counters, export."""

import json

import pytest

from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized
from repro.trace import (
    LatencyHistogram,
    SCHEMA,
    Tracer,
    cause_counts,
    cause_table,
    dump_trace,
    load_trace,
    render_timeline,
    to_chrome_trace,
    trace_summary,
    validate_chrome_trace,
)


def _demo_workload(kernel, ctx):
    t0 = kernel.read_time(ctx)
    ctx.compute(2_000)
    kernel.sbi_send_ipi(ctx, 0b1, 0)
    ctx.compute(100)
    kernel.print(ctx, f"up at {t0}\n")


@pytest.fixture(scope="module")
def traced_boot():
    system = build_virtualized(VISIONFIVE2, workload=_demo_workload)
    tracer = Tracer()
    system.machine.tracer = tracer
    reason = system.run()
    assert "sbi system reset" in reason
    return system, tracer


class TestTracer:
    def test_disabled_by_default(self):
        system = build_virtualized(VISIONFIVE2, workload=_demo_workload)
        assert system.machine.tracer is None
        system.run()  # no tracer attached: must work untouched

    def test_records_every_layer(self, traced_boot):
        _, tracer = traced_boot
        for kind in ("trap-entry", "trap-exit", "world-switch",
                     "fw-emulate", "fastpath", "vpmp"):
            assert tracer.counts[kind] > 0, f"no {kind} events recorded"

    def test_events_are_stamped(self, traced_boot):
        _, tracer = traced_boot
        for event in tracer.events():
            assert event.mtime >= 0
            assert event.instret >= 0
            assert event.kind in tracer.counts

    def test_cause_counters_match_stats(self, traced_boot):
        system, tracer = traced_boot
        assert tracer.dropped == 0
        assert dict(tracer.trap_causes) == dict(system.machine.stats.trap_counts)
        assert tracer.counts["trap-entry"] == system.machine.stats.total_traps

    def test_ring_wraps_but_counters_stay_exact(self):
        tracer = Tracer(capacity=8)

        class _FakeHart:
            instret = 0

        class _FakeConfig:
            frequency_hz = 1_000_000

        class _FakeMachine:
            harts = [_FakeHart()]
            config = _FakeConfig()
            cycles = 0.0

        machine = _FakeMachine()
        for _ in range(20):
            tracer.emit(machine, "fw-emulate", 0, what="nop")
        assert len(tracer.events()) == 8
        assert tracer.counts["fw-emulate"] == 20
        assert tracer.dropped == 12
        assert tracer.total_events == 20

    def test_quarantine_dump_captures_tail(self, traced_boot):
        _, tracer = traced_boot
        tracer.note_quarantine("test reason", tail=4)
        assert len(tracer.quarantine_dumps) == 1
        reason, events = tracer.quarantine_dumps[-1]
        assert reason == "test reason"
        assert len(events) == 4
        assert [e.seq for e in events] == [e.seq for e in tracer.tail(4)]


class TestExport:
    def test_chrome_trace_is_schema_valid(self, traced_boot):
        _, tracer = traced_boot
        doc = to_chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["schema"] == SCHEMA

    def test_cause_counts_equal_stats(self, traced_boot):
        system, tracer = traced_boot
        doc = to_chrome_trace(tracer)
        assert cause_counts(doc) == dict(system.machine.stats.trap_counts)

    def test_round_trip_through_file(self, traced_boot, tmp_path):
        _, tracer = traced_boot
        path = tmp_path / "trace.json"
        dump_trace(tracer, path)
        doc = load_trace(path)
        assert validate_chrome_trace(doc) == []
        # The file is plain JSON — any Chrome-trace viewer can open it.
        assert json.loads(path.read_text())["otherData"]["schema"] == SCHEMA

    def test_validator_flags_corruption(self, traced_boot):
        _, tracer = traced_boot
        doc = to_chrome_trace(tracer)
        doc["otherData"]["trap_causes"]["ILLEGAL_INSTRUCTION"] = 1
        assert validate_chrome_trace(doc)

    def test_spans_have_durations(self, traced_boot):
        _, tracer = traced_boot
        doc = to_chrome_trace(tracer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        for span in spans:
            assert span["dur"] >= 0
            assert span["args"]["cycles"] >= 0


class TestRendering:
    def test_summary_mentions_counts(self, traced_boot):
        _, tracer = traced_boot
        text = trace_summary(tracer)
        assert "trap-entry" in text
        assert str(tracer.total_events) in text

    def test_cause_table_lists_every_cause(self, traced_boot):
        system, tracer = traced_boot
        text = cause_table(to_chrome_trace(tracer))
        for cause in system.machine.stats.trap_counts:
            assert cause in text
        assert "total" in text

    def test_timeline_respects_last(self, traced_boot):
        _, tracer = traced_boot
        doc = to_chrome_trace(tracer)
        lines = render_timeline(doc, last=5).splitlines()
        assert len([l for l in lines if l.startswith("[")]) == 5


class TestMetrics:
    def test_histogram_statistics(self):
        hist = LatencyHistogram()
        for value in (1, 2, 4, 100):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1
        assert snap["max"] == 100
        assert hist.mean == pytest.approx(107 / 4)

    def test_trap_latencies_observed(self, traced_boot):
        _, tracer = traced_boot
        latencies = tracer.metrics.trap_latency
        assert "ILLEGAL_INSTRUCTION" in latencies
        assert latencies["ILLEGAL_INSTRUCTION"].count > 0
        assert latencies["ILLEGAL_INSTRUCTION"].mean > 0
