"""Trap events must be annotated on the hart that took them.

Regression tests for cross-hart trap misattribution:
``TrapStats.annotate_last`` tracked one machine-global "last" event, but
firmware trap handling spans scheduler slices — under SMP another hart
records its own trap in between, and the firmware's annotation then
lands on the *wrong hart's* event.  The observable symptom: exception
events carrying interrupt details (``irq:3`` on an ECALL) and interrupt
events carrying SBI-dispatch details (``sbi:rfence`` on an MSI), which
are physically impossible pairings.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.os_model.workloads import SMP_WORKLOADS
from repro.spec.platform import VISIONFIVE2
from repro.system import build_native, build_virtualized


def _impossible_pairings(stats):
    """Annotations that cannot belong to the event they landed on."""
    wrong = []
    for event in stats.events:
        if event.is_interrupt and (event.detail.startswith("sbi:")
                                   or event.detail.startswith("emulate:")):
            wrong.append(event)
        if not event.is_interrupt and event.detail.startswith("irq:"):
            wrong.append(event)
    return wrong


def _run_smp(builder, workload_name, harts=2, **kwargs):
    primary, secondary = SMP_WORKLOADS[workload_name]()
    platform = dataclasses.replace(VISIONFIVE2, num_harts=harts)
    system = builder(platform, workload=primary,
                     secondary_workload=secondary,
                     start_secondaries=harts > 1, **kwargs)
    system.run_smp(quantum=50, seed=0)
    return system


@pytest.mark.parametrize("workload", ["ipi-pingpong", "rfence-storm",
                                      "timer-contention"])
def test_no_misattributed_annotations_virtualized(workload):
    system = _run_smp(build_virtualized, workload, offload=False)
    wrong = _impossible_pairings(system.machine.stats)
    assert not wrong, (
        f"{len(wrong)} events annotated with details from another trap, "
        f"e.g. hart={wrong[0].hart} cause={wrong[0].cause} "
        f"irq={wrong[0].is_interrupt} detail={wrong[0].detail!r}"
    )


def test_no_misattributed_annotations_native():
    system = _run_smp(build_native, "rfence-storm")
    wrong = _impossible_pairings(system.machine.stats)
    assert not wrong, (
        f"{len(wrong)} native events annotated with details from another "
        f"trap, e.g. hart={wrong[0].hart} detail={wrong[0].detail!r}"
    )


def test_annotations_target_the_annotating_hart():
    """With per-hart attribution, every firmware SBI annotation sits on
    an ECALL event and every ``irq:`` annotation on an interrupt."""
    system = _run_smp(build_virtualized, "ipi-pingpong", offload=False)
    for event in system.machine.stats.events:
        if event.detail.startswith("sbi:"):
            assert not event.is_interrupt
        if event.detail.startswith("irq:"):
            assert event.is_interrupt
