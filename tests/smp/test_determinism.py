"""Determinism contract: a schedule is a pure function of its inputs.

Same (workload, harts, quantum, seed, jitter) ⇒ byte-identical trace
event streams — not just the same end state.  This is what makes
interleaving fuzzing reproducible: any failure found at a seed replays
exactly.
"""

import dataclasses

import pytest

from repro.os_model.workloads import SMP_WORKLOADS
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized
from repro.trace import Tracer


def _traced_run(harts, workload_name, quantum=50, seed=0, jitter=0):
    primary, secondary = SMP_WORKLOADS[workload_name]()
    system = build_virtualized(
        dataclasses.replace(VISIONFIVE2, num_harts=harts),
        workload=primary,
        secondary_workload=secondary,
        start_secondaries=harts > 1,
    )
    tracer = Tracer(capacity=200_000)
    system.machine.tracer = tracer
    reason = system.run_smp(quantum=quantum, seed=seed, jitter=jitter)
    stream = tuple(event.to_tuple() for event in tracer.events())
    assert tracer.dropped == 0, "ring too small for a determinism check"
    return {
        "reason": reason,
        "stream": stream,
        "steps": list(system.machine.scheduler.steps),
        "slices": system.machine.scheduler.slices,
        "ssi": dict(system.kernel.ssi_by_hart),
        "console": system.console_output,
    }


class TestDeterminism:
    @pytest.mark.parametrize("harts", [1, 2, 4])
    def test_same_seed_identical_trace_streams(self, harts):
        a = _traced_run(harts, "ipi-pingpong", seed=3)
        b = _traced_run(harts, "ipi-pingpong", seed=3)
        assert a["reason"] == b["reason"]
        assert a["steps"] == b["steps"]
        assert a["slices"] == b["slices"]
        assert a["ssi"] == b["ssi"]
        assert a["console"] == b["console"]
        assert a["stream"] == b["stream"]

    def test_jittered_schedule_still_deterministic_per_seed(self):
        a = _traced_run(2, "rfence-storm", quantum=40, seed=9, jitter=15)
        b = _traced_run(2, "rfence-storm", quantum=40, seed=9, jitter=15)
        assert a["stream"] == b["stream"]
        assert a["steps"] == b["steps"]

    def test_timer_workload_deterministic(self):
        a = _traced_run(2, "timer-contention", seed=1)
        b = _traced_run(2, "timer-contention", seed=1)
        assert a["stream"] == b["stream"]
        assert a["ssi"] == b["ssi"]
