"""SMP traces render as one labelled track per hart in Chrome/Perfetto.

The exporter must emit ``ph: "M"`` thread-name metadata for every tid in
the stream, and the schema validator must accept those records.
"""

import dataclasses

from repro.os_model.workloads import SMP_WORKLOADS
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized
from repro.trace import Tracer, dump_trace, load_trace, to_chrome_trace, \
    validate_chrome_trace


def _traced_smp_doc(harts=2):
    primary, secondary = SMP_WORKLOADS["rfence-storm"]()
    system = build_virtualized(
        dataclasses.replace(VISIONFIVE2, num_harts=harts),
        workload=primary,
        secondary_workload=secondary,
        start_secondaries=True,
    )
    tracer = Tracer()
    system.machine.tracer = tracer
    reason = system.run_smp()
    assert "sbi system reset" in reason
    return to_chrome_trace(tracer)


class TestPerHartTracks:
    def test_thread_name_metadata_per_hart(self):
        doc = _traced_smp_doc(harts=2)
        names = {
            event["tid"]: event["args"]["name"]
            for event in doc["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        tids = {
            event["tid"] for event in doc["traceEvents"]
            if event["ph"] != "M"
        }
        assert tids >= {0, 1}, "no events from the secondary hart"
        for tid in tids:
            assert names.get(tid) == f"hart {tid}"

    def test_metadata_validates_and_round_trips(self, tmp_path):
        doc = _traced_smp_doc(harts=2)
        assert validate_chrome_trace(doc) == []
        primary, secondary = SMP_WORKLOADS["rfence-storm"]()
        system = build_virtualized(
            dataclasses.replace(VISIONFIVE2, num_harts=2),
            workload=primary,
            secondary_workload=secondary,
            start_secondaries=True,
        )
        tracer = Tracer()
        system.machine.tracer = tracer
        system.run_smp()
        path = tmp_path / "smp-trace.json"
        dump_trace(tracer, path)
        assert validate_chrome_trace(load_trace(path)) == []

    def test_validator_rejects_unknown_metadata_name(self):
        doc = _traced_smp_doc(harts=2)
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                event["name"] = "mystery_meta"
                break
        assert validate_chrome_trace(doc)
