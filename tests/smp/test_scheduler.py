"""Unit and behavioural tests for the deterministic SMP scheduler.

The scheduler replaces the legacy park-one-hart-at-a-time flow with real
round-robin interleaving of every STARTED hart: one baton, one runnable
thread at a time, preemption only at architectural checkpoints — so a
schedule is a pure function of (workloads, quantum, seed).
"""

import dataclasses

import pytest

from repro.os_model.workloads import SMP_WORKLOADS
from repro.smp import SmpScheduler
from repro.spec.platform import VISIONFIVE2
from repro.system import build_virtualized


def _platform(harts):
    return dataclasses.replace(VISIONFIVE2, num_harts=harts)


def _run_smp(harts, workload_name, quantum=50, seed=0, jitter=0):
    primary, secondary = SMP_WORKLOADS[workload_name]()
    system = build_virtualized(
        _platform(harts),
        workload=primary,
        secondary_workload=secondary,
        start_secondaries=harts > 1,
    )
    reason = system.run_smp(quantum=quantum, seed=seed, jitter=jitter)
    return system, reason


class _FakeConfig:
    num_harts = 2


class _FakeMachine:
    config = _FakeConfig()


class TestConstruction:
    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError, match="quantum"):
            SmpScheduler(_FakeMachine(), quantum=0)

    @pytest.mark.parametrize("jitter", [-1, 50, 60])
    def test_jitter_must_be_smaller_than_quantum(self, jitter):
        with pytest.raises(ValueError, match="jitter"):
            SmpScheduler(_FakeMachine(), quantum=50, jitter=jitter)

    def test_zero_jitter_is_valid(self):
        scheduler = SmpScheduler(_FakeMachine(), quantum=50, jitter=0)
        assert scheduler.jitter == 0
        assert scheduler.steps == [0, 0]


class TestScheduling:
    def test_single_hart_boots_to_reset(self):
        system, reason = _run_smp(1, "rfence-storm")
        assert "sbi system reset" in reason
        scheduler = system.machine.scheduler
        assert scheduler is not None
        assert scheduler.steps[0] > 0
        assert scheduler.slices > 0

    @pytest.mark.parametrize("harts", [2, 4])
    def test_every_hart_gets_checkpoints(self, harts):
        system, reason = _run_smp(harts, "rfence-storm")
        assert "sbi system reset" in reason
        steps = system.machine.scheduler.steps
        assert len(steps) == harts
        for hartid, count in enumerate(steps):
            assert count > 0, f"hart {hartid} never ran a checkpoint"

    def test_cross_hart_fastpath_traffic_at_two_harts(self):
        """With ≥2 harts interleaving, the IPI and remote-fence fast
        paths must both fire — the whole point of the SMP scheduler."""
        system, _ = _run_smp(2, "rfence-storm")
        hits = system.miralis.offload.hits
        assert hits.get("rfence", 0) > 0
        assert hits.get("ipi-interrupt", 0) > 0

    def test_ipi_pingpong_reaches_every_secondary(self):
        system, reason = _run_smp(4, "ipi-pingpong")
        assert "sbi system reset" in reason
        kernel = system.kernel
        # Every secondary answered at least one ping, and hart 0
        # received the pongs.
        for hartid in (1, 2, 3):
            assert kernel.ssi_by_hart[hartid] > 0, f"hart {hartid} silent"
        assert kernel.ssi_by_hart[0] > 0

    def test_timer_contention_ticks_all_harts(self):
        """All-blocked time advance: when every hart busy-waits on its
        own comparator, the clock must jump to the earliest deadline and
        every hart must take timer ticks."""
        system, _ = _run_smp(2, "timer-contention")
        kernel = system.kernel
        assert kernel.ticks_by_hart[0] > 0
        assert kernel.ticks_by_hart[1] > 0

    def test_steps_accounting_matches_slices(self):
        """Slices are bounded by quantum: total checkpoints never exceed
        slices × (quantum + jitter)."""
        system, _ = _run_smp(2, "rfence-storm", quantum=30)
        scheduler = system.machine.scheduler
        assert sum(scheduler.steps) <= scheduler.slices * 30


class TestInterleaving:
    def test_secondary_progresses_before_primary_finishes(self):
        """The legacy flow ran each hart to completion on the caller's
        stack; under the scheduler a secondary must make progress while
        hart 0's workload is still mid-body."""
        observed = []

        def primary(kernel, ctx):
            kernel.sbi_send_ipi(ctx, 0b10, 0)
            for _ in range(400):
                if kernel.ssi_by_hart[1] > 0:
                    break
                ctx.compute(50)
            # Snapshot from *inside* the primary body: the secondary has
            # already executed its SSI handler.
            observed.append(kernel.ssi_by_hart[1])

        def secondary(kernel, ctx):
            ctx.compute(200)

        system = build_virtualized(
            _platform(2),
            workload=primary,
            secondary_workload=secondary,
            start_secondaries=True,
        )
        reason = system.run_smp(quantum=20)
        assert "sbi system reset" in reason
        assert observed == [1]
