"""Regression tests for the perf stats-provider registry and StepMeter.

Two seeded bugs live here:

* the module-global ``_providers`` registry had no unregister/reset and
  no per-machine keying, so a second boot in the same process reported
  cumulative (stale) cache stats from the first run;
* ``StepMeter.start()`` silently discarded a running interval, so
  nested/double use under-reported elapsed time.
"""

from __future__ import annotations

import gc
import re

import pytest

from repro.cli import main
from repro.perf import (
    StepMeter,
    cache_stats,
    register_stats_provider,
    unregister_stats_provider,
)


def _decode_hits(output: str) -> int:
    match = re.search(r"isa\.decode.*?hits=(\d+)", output)
    assert match, f"no isa.decode line in:\n{output}"
    return int(match.group(1))


class TestProviderRegistry:
    def test_second_profile_reflects_second_run_only(self, capsys):
        # The decode LRU is module-global: without a per-run baseline the
        # second --profile report includes the first boot's hits as well
        # (roughly double).  Identical boots must report identical-ish
        # per-run numbers.
        assert main(["boot", "--profile"]) == 0
        first = _decode_hits(capsys.readouterr().out)
        assert main(["boot", "--profile"]) == 0
        second = _decode_hits(capsys.readouterr().out)
        assert first > 0
        assert second <= first * 1.2, (
            f"second --profile report leaked stats from the first run "
            f"(hits {first} -> {second})"
        )

    def test_unregister_removes_provider(self):
        register_stats_provider("test.tmp", lambda: {"hits": 1, "misses": 0})
        try:
            assert "test.tmp" in cache_stats()
        finally:
            unregister_stats_provider("test.tmp")
        assert "test.tmp" not in cache_stats()

    def test_owned_provider_hidden_from_global_view(self):
        class Owner:
            pass

        owner = Owner()
        register_stats_provider("test.owned", lambda: {"hits": 2}, owner=owner)
        try:
            assert "test.owned" not in cache_stats()
            assert cache_stats(owner=owner)["test.owned"] == {"hits": 2}
        finally:
            unregister_stats_provider("test.owned", owner=owner)

    def test_owned_provider_dies_with_owner(self):
        class Owner:
            pass

        owner = Owner()
        register_stats_provider("test.mortal", lambda: {"hits": 3}, owner=owner)
        assert cache_stats(owner=owner)["test.mortal"] == {"hits": 3}
        del owner
        gc.collect()
        # The registry must not keep dead owners' providers alive.
        assert all("test.mortal" not in stats
                   for stats in (cache_stats(),))

    def test_bus_provider_keyed_per_machine(self, vf2):
        from repro.hart.machine import Machine

        first = Machine(vf2)
        second = Machine(vf2)
        for _ in range(4):
            first.spec_bus.read(vf2.uart_base + 5, 1)
        second.spec_bus.read(vf2.uart_base + 5, 1)
        stats_first = cache_stats(owner=first)["bus.devices"]
        stats_second = cache_stats(owner=second)["bus.devices"]
        assert stats_first["hits"] + stats_first["misses"] == 4
        assert stats_second["hits"] + stats_second["misses"] == 1


class TestStepMeter:
    def test_double_start_raises(self):
        meter = StepMeter()
        meter.start()
        with pytest.raises(RuntimeError):
            meter.start()
        meter.stop()
        meter.start()  # restarting after stop stays legal
        meter.stop()

    def test_nested_with_raises(self):
        meter = StepMeter()
        with meter:
            with pytest.raises(RuntimeError):
                with meter:
                    pass

    def test_stop_without_start_is_noop(self):
        meter = StepMeter()
        meter.stop()
        assert meter.elapsed == 0.0

    def test_accumulates_across_intervals(self):
        meter = StepMeter()
        with meter:
            pass
        first = meter.elapsed
        with meter:
            pass
        assert meter.elapsed >= first
