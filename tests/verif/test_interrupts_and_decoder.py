"""Virtual-interrupt and instruction-decoder verification tasks (Table 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import decode
from repro.isa.encoding import encode
from repro.isa.instructions import IllegalInstructionError, Instruction
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.verif import run_interrupt_check, virtual_platform
from repro.verif.spaces import csr_instruction_space, system_instruction_space


class TestVirtualInterruptTask:
    @pytest.mark.parametrize("platform", [VISIONFIVE2, PREMIER_P550],
                             ids=["vf2", "p550"])
    def test_exhaustive_interrupt_space(self, platform):
        report = run_interrupt_check(virtual_platform(platform))
        assert report.passed, report.first_failures()
        assert report.inputs_checked >= 2_000


class TestDecoderTask:
    """Table 2 'instruction decoder': encode/decode agreement."""

    def test_privileged_space_roundtrip(self):
        platform = virtual_platform(VISIONFIVE2, virtual_pmp_count=4)
        from repro.spec.csrs import known_csr_addresses

        count = 0
        for instr in list(csr_instruction_space(known_csr_addresses(platform))) \
                + list(system_instruction_space()):
            assert decode(encode(instr)) == instr
            count += 1
        assert count > 500

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=2_000, deadline=None)
    def test_decoder_total_on_word_space(self, word):
        """decode() is total: decodes or raises, never crashes, and what it
        decodes re-encodes to an equivalent instruction."""
        try:
            instr = decode(word)
        except IllegalInstructionError:
            return
        assert decode(encode(instr)) == instr

    def test_every_privileged_mnemonic_reachable(self):
        """The decoder produces every instruction the emulator handles."""
        reachable = set()
        for instr in system_instruction_space():
            reachable.add(decode(encode(instr)).mnemonic)
        assert reachable >= {"mret", "sret", "wfi", "ecall", "sfence.vma",
                             "fence.i"}
