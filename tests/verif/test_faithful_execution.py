"""Faithful execution (Definition 2): PMP programming matches the reference.

Follows §6.4: symbolic (enumerated) virtual PMP registers are run through
Miralis's install function, and the reference ``pmpCheck`` compares
physical against virtual access decisions at structured probe addresses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vcpu import World
from repro.isa import constants as c
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.system import build_virtualized
from repro.verif import (
    address_probe_points,
    check_pmp_configuration,
    pmp_config_space,
    run_execution_check,
)


@pytest.fixture(scope="module")
def vf2_system():
    return build_virtualized(VISIONFIVE2)


class TestStructuredSweep:
    def test_full_configuration_space_vf2(self, vf2_system):
        report = run_execution_check(
            vf2_system,
            pmp_config_space(vf2_system.miralis.vpmp.virtual_count),
        )
        assert report.passed, report.first_failures()
        assert report.inputs_checked >= 200

    def test_full_configuration_space_p550(self):
        system = build_virtualized(PREMIER_P550)
        report = run_execution_check(
            system, pmp_config_space(system.miralis.vpmp.virtual_count)
        )
        assert report.passed, report.first_failures()

    def test_monitor_always_protected(self, vf2_system):
        """No virtual PMP configuration can open the monitor's memory."""
        miralis = vf2_system.miralis
        hart = vf2_system.machine.harts[0]
        vctx = miralis.vctx[0]
        hostile = [
            # All-memory RWX attempts in every mode.
            ([0x1F] * 4, [(1 << 54) - 1] * 4),
            ([0x0F] * 4, [(1 << 54) - 1] * 4),  # TOR all-memory
            # Pinpoint the monitor region.
            ([0x1F, 0, 0, 0],
             [__import__("repro.isa.bits", fromlist=["napot_encode"])
              .napot_encode(miralis.region.base, miralis.region.size), 0, 0, 0]),
        ]
        probe = [miralis.region.base, miralis.region.base + 0x8000,
                 miralis.region.end - 8]
        for cfg, addr in hostile:
            count = vctx.virtual_pmp_count
            vctx.pmpcfg = list(cfg[:count]) + [0] * (64 - count)
            vctx.pmpaddr = list(addr[:count]) + [0] * (64 - count)
            for world in (World.FIRMWARE, World.OS):
                miralis.vpmp.install(hart, vctx, world, miralis.policy)
                divergences = check_pmp_configuration(
                    miralis, hart, vctx, probe, world
                )
                assert not divergences, divergences[0]

    def test_probe_points_cover_boundaries(self, vf2_system):
        points = address_probe_points(vf2_system.machine.config)
        clint_base = vf2_system.machine.config.clint_base
        assert clint_base in points
        assert clint_base - 8 in points


class TestPropertyBased:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=0x9F),
            min_size=4, max_size=4,
        ),
        st.lists(
            st.integers(min_value=0, max_value=(1 << 40)),
            min_size=4, max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_configurations(self, cfg, addr):
        system = build_virtualized(VISIONFIVE2)
        cfg = [byte & c.PMP_CFG_VALID_MASK for byte in cfg]
        report = run_execution_check(system, [(cfg, addr)])
        assert report.passed, report.first_failures()
