"""Faithful emulation (Definition 1): the emulator matches the spec.

The Table 2 verification tasks, as exhaustive structured enumeration plus
Hypothesis sampling: CSR reads/writes over every implemented CSR, mret,
sret, wfi, and end-to-end emulation over random states.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import constants as c
from repro.isa.instructions import Instruction
from repro.spec.csrs import known_csr_addresses
from repro.spec.platform import PREMIER_P550, RVA23_MACHINE, VISIONFIVE2
from repro.verif import (
    StateDescription,
    check_instruction,
    csr_instruction_space,
    csr_value_space,
    mstatus_space,
    run_emulation_check,
    system_instruction_space,
    virtual_platform,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

VF2_VIRTUAL = virtual_platform(VISIONFIVE2, virtual_pmp_count=4)
P550_VIRTUAL = virtual_platform(PREMIER_P550, virtual_pmp_count=4)
RVA23_VIRTUAL = virtual_platform(RVA23_MACHINE, virtual_pmp_count=10)


def baseline_descriptions():
    return [
        StateDescription(),
        StateDescription(csr_values={"mstatus": (1 << 11) | c.MSTATUS_MPIE}),
        StateDescription(
            csr_values={"mie": c.MIP_MASK, "mip": c.MIP_MTIP | c.MIP_SSIP},
            gprs=[0] + [0xDEAD_BEEF] * 31,
        ),
        StateDescription(csr_values={"mtvec": 0x8020_0001}),  # vectored
        StateDescription(pc=0xFFFF_FFFF_FFFF_FFFC),  # pc at the 64-bit edge
    ]


class TestCsrReadTask:
    """Table 2 'CSR read': every CSR, multiple source states."""

    @pytest.mark.parametrize("platform", [VF2_VIRTUAL, P550_VIRTUAL,
                                          RVA23_VIRTUAL],
                             ids=["vf2", "p550", "rva23"])
    def test_all_reads_match(self, platform):
        instructions = [
            Instruction("csrrs", rd=1, rs1=0, csr=csr)
            for csr in known_csr_addresses(platform)
        ]
        report = run_emulation_check(
            platform, baseline_descriptions(), instructions, task="csr-read"
        )
        assert report.passed, report.first_failures()
        assert report.inputs_checked >= 150


class TestCsrWriteTask:
    """Table 2 'CSR write': boundary values through every CSR."""

    def test_all_writes_match_vf2(self):
        platform = VF2_VIRTUAL
        descriptions = [
            StateDescription(gprs=[0] + [value] * 31)
            for value in csr_value_space(samples=4)[:40]
        ]
        report = run_emulation_check(
            platform, descriptions, csr_instruction_space(
                known_csr_addresses(platform)
            ),
            task="csr-write",
        )
        assert report.passed, report.first_failures()
        assert report.inputs_checked > 10_000

    def test_mstatus_field_product(self):
        platform = VF2_VIRTUAL
        descriptions = [
            StateDescription(csr_values={"mstatus": value},
                             gprs=[0] + [operand] * 31)
            for value in mstatus_space()[:48]
            for operand in (0, (1 << 64) - 1, 0x1AAA)
        ]
        instructions = [
            Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_MSTATUS),
            Instruction("csrrs", rd=1, rs1=2, csr=c.CSR_MSTATUS),
            Instruction("csrrc", rd=1, rs1=2, csr=c.CSR_MSTATUS),
            Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_SSTATUS),
        ]
        report = run_emulation_check(platform, descriptions, instructions,
                                     task="mstatus-write")
        assert report.passed, report.first_failures()

    def test_pmp_registers(self):
        platform = VF2_VIRTUAL
        pmp_csrs = [c.CSR_PMPCFG0, c.CSR_PMPCFG0 + 2,
                    c.CSR_PMPADDR0, c.CSR_PMPADDR0 + 3, c.CSR_PMPADDR0 + 9]
        descriptions = [
            StateDescription(gprs=[0] + [value] * 31)
            for value in (0x1F, 0x1A1A1A1A1A1A1A1A, 0x9898989898989898,
                          (1 << 64) - 1, 0x0707070707070707)
        ]
        report = run_emulation_check(
            platform, descriptions, csr_instruction_space(pmp_csrs),
            task="pmp-csr-write",
        )
        assert report.passed, report.first_failures()

    def test_interrupt_registers(self):
        platform = VF2_VIRTUAL
        irq_csrs = [c.CSR_MIE, c.CSR_MIP, c.CSR_SIE, c.CSR_SIP,
                    c.CSR_MIDELEG, c.CSR_MEDELEG]
        descriptions = [
            StateDescription(
                csr_values={"mip": pending, "mie": enabled},
                gprs=[0] + [operand] * 31,
            )
            for pending in (0, c.MIP_MASK, c.MIP_MTIP)
            for enabled in (0, c.MIP_MASK)
            for operand in (0, (1 << 64) - 1, c.SIP_MASK)
        ]
        report = run_emulation_check(
            platform, descriptions, csr_instruction_space(irq_csrs),
            task="interrupt-csrs",
        )
        assert report.passed, report.first_failures()


class TestXretTasks:
    """Table 2 'mret instruction' / sret: over the mstatus field product."""

    @pytest.mark.parametrize("mnemonic", ["mret", "sret"])
    def test_xret_over_mstatus_space(self, mnemonic):
        platform = VF2_VIRTUAL
        descriptions = [
            StateDescription(
                csr_values={"mstatus": value, "mepc": 0x8400_0000,
                            "sepc": 0x8400_2000},
            )
            for value in mstatus_space()
        ]
        report = run_emulation_check(
            platform, descriptions, [Instruction(mnemonic)], task=mnemonic
        )
        assert report.passed, report.first_failures()
        assert report.inputs_checked >= 128

    def test_mret_with_extreme_mepc(self):
        platform = VF2_VIRTUAL
        descriptions = [
            StateDescription(csr_values={"mepc": value})
            for value in (0, 4, (1 << 64) - 4, 0x8000_0000)
        ]
        report = run_emulation_check(
            platform, descriptions, [Instruction("mret")], task="mret-mepc"
        )
        assert report.passed, report.first_failures()


class TestWfiAndFences:
    def test_wfi(self):
        report = run_emulation_check(
            VF2_VIRTUAL, baseline_descriptions(), [Instruction("wfi")],
            task="wfi",
        )
        assert report.passed, report.first_failures()

    def test_ecall_injection(self):
        report = run_emulation_check(
            VF2_VIRTUAL, baseline_descriptions(), [Instruction("ecall")],
            task="ecall",
        )
        assert report.passed, report.first_failures()

    def test_fences(self):
        report = run_emulation_check(
            VF2_VIRTUAL, baseline_descriptions(),
            [Instruction("sfence.vma"), Instruction("fence.i")],
            task="fences",
        )
        assert report.passed, report.first_failures()


class TestEndToEnd:
    """Table 2 'end-to-end emulation': the full instruction space against
    structured states on every platform flavour."""

    @pytest.mark.parametrize("platform", [VF2_VIRTUAL, P550_VIRTUAL,
                                          RVA23_VIRTUAL],
                             ids=["vf2", "p550", "rva23"])
    def test_full_sweep(self, platform):
        instructions = list(
            csr_instruction_space(known_csr_addresses(platform))
        ) + list(system_instruction_space())
        report = run_emulation_check(
            platform, baseline_descriptions(), instructions, task="end-to-end"
        )
        assert report.passed, report.first_failures()
        assert report.inputs_checked > 3_000


class TestPropertyBased:
    """Hypothesis sampling over the full 64-bit state space."""

    @given(u64, u64, st.sampled_from(["csrrw", "csrrs", "csrrc"]))
    @settings(max_examples=200, deadline=None)
    def test_random_mstatus_writes(self, state_value, operand, mnemonic):
        description = StateDescription(
            csr_values={"mstatus": state_value}, gprs=[0] + [operand] * 31
        )
        divergences = check_instruction(
            VF2_VIRTUAL, description,
            Instruction(mnemonic, rd=3, rs1=4, csr=c.CSR_MSTATUS),
        )
        assert not divergences, divergences[0]

    @given(u64, st.integers(min_value=0, max_value=63))
    @settings(max_examples=150, deadline=None)
    def test_random_pmpaddr_writes(self, operand, entry_selector):
        description = StateDescription(gprs=[0] + [operand] * 31)
        csr = c.CSR_PMPADDR0 + (entry_selector % 16)
        divergences = check_instruction(
            VF2_VIRTUAL, description, Instruction("csrrw", rd=3, rs1=4, csr=csr)
        )
        assert not divergences, divergences[0]

    @given(u64, u64)
    @settings(max_examples=150, deadline=None)
    def test_random_mret(self, mstatus, mepc):
        description = StateDescription(
            csr_values={"mstatus": mstatus, "mepc": mepc}
        )
        divergences = check_instruction(
            VF2_VIRTUAL, description, Instruction("mret")
        )
        assert not divergences, divergences[0]

    @given(st.integers(min_value=0, max_value=0xFFF), u64)
    @settings(max_examples=300, deadline=None)
    def test_random_csr_address_space(self, csr, operand):
        """Any CSR address: both models agree, including on illegality."""
        description = StateDescription(gprs=[0] + [operand] * 31)
        divergences = check_instruction(
            VF2_VIRTUAL, description, Instruction("csrrw", rd=3, rs1=4, csr=csr)
        )
        assert not divergences, divergences[0]
