"""Fuzz failure reports embed the generated input (triage satellite S3).

A seed is only a repro if the generator never changes; the *decoded*
(action, operand) sequence is the durable artifact.  Findings carry it,
print a preview of it, and campaign fuzz cells export it.
"""

from repro.verif.fuzz import FuzzFinding, Scenario, fuzz_scenario


class TestFindingEmbedsInput:
    def _finding(self, **kwargs):
        defaults = dict(
            scenario=Scenario(seed=11, length=5),
            offload=True,
            native={"ssi": 1, "crashed": None},
            virtualized={"ssi": 0, "crashed": None},
        )
        defaults.update(kwargs)
        return FuzzFinding(**defaults)

    def test_steps_default_to_decoded_scenario(self):
        finding = self._finding()
        assert finding.steps == tuple(Scenario(seed=11, length=5).actions())
        assert finding.steps  # non-empty: the input really is embedded

    def test_explicit_steps_are_preserved(self):
        steps = (("compute", 10), ("read_time", 0))
        finding = self._finding(steps=steps)
        assert finding.steps == steps

    def test_str_includes_input_preview(self):
        text = str(self._finding())
        action, operand = Scenario(seed=11, length=5).actions()[0]
        assert f"{action}({operand:#x})" in text
        assert "[input:" in text

    def test_long_input_preview_is_truncated(self):
        finding = self._finding(scenario=Scenario(seed=11, length=20))
        assert "…+" in str(finding)

    def test_scenario_replays_explicit_steps(self):
        original = Scenario(seed=3, length=8)
        replayed = Scenario(seed=0, length=8,
                            steps=tuple(original.actions()))
        # Explicit steps dominate the seed decode: the replay executes
        # the recorded input even under a different seed.
        assert replayed.actions() == original.actions()

    def test_fuzz_scenario_accepts_step_lists(self):
        # Identical inputs on both deployments: explicit benign steps
        # produce no divergence, and the call accepts list-shaped pairs
        # as loaded from a JSON bundle.
        finding = fuzz_scenario(seed=0, length=2,
                                steps=[["compute", 10], ["read_time", 0]])
        assert finding is None


class TestCampaignFuzzCellExportsSteps:
    def test_payload_findings_carry_steps_and_bundle(self, monkeypatch):
        from repro.campaign.cells import _run_fuzz_cell
        from repro.core.offload import FastPath
        from repro.sbi.types import SbiRet

        def broken_set_timer(self, hart, deadline):
            hart.charge(10)
            return SbiRet.success(0xBAD)  # wrong: value must be 0

        monkeypatch.setattr(FastPath, "_sbi_set_timer", broken_set_timer)
        status, payload = _run_fuzz_cell({
            "platform": "visionfive2", "start": 0, "stop": 8,
            "length": 30, "offload": True,
        })
        assert payload["findings"], "expected a seeded divergence"
        for finding in payload["findings"]:
            assert finding["steps"], "decoded input missing from finding"
            assert all(isinstance(action, str) and isinstance(operand, int)
                       for action, operand in finding["steps"])
            bundle = finding["bundle"]
            assert bundle["workload"]["steps"] == [
                [action, operand] for action, operand in finding["steps"]]
