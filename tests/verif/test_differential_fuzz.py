"""System-level differential fuzzing: native ≡ virtualized.

Seeded random guest scenarios must be observationally identical across
the native and Miralis deployments — the end-to-end complement of the §6
component checkers.
"""

import pytest

from repro.core import bugs
from repro.spec.platform import PREMIER_P550, VISIONFIVE2
from repro.verif.fuzz import (
    ACTIONS,
    Scenario,
    fuzz_campaign,
    fuzz_scenario,
)


class TestScenarioGeneration:
    def test_deterministic(self):
        assert Scenario(seed=7).actions() == Scenario(seed=7).actions()

    def test_seeds_differ(self):
        assert Scenario(seed=7).actions() != Scenario(seed=8).actions()

    def test_length(self):
        assert len(Scenario(seed=1, length=17).actions()) == 17

    def test_all_actions_reachable(self):
        seen = set()
        for seed in range(40):
            seen.update(name for name, _ in Scenario(seed, length=60).actions())
        assert seen == {name for name, _ in ACTIONS}


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("seed", range(0, 12))
    def test_offload_equivalence(self, seed):
        finding = fuzz_scenario(seed, length=30)
        assert finding is None, str(finding)

    @pytest.mark.parametrize("seed", range(0, 6))
    def test_no_offload_equivalence(self, seed):
        finding = fuzz_scenario(seed, length=30, offload=False)
        assert finding is None, str(finding)

    @pytest.mark.parametrize("seed", range(100, 104))
    def test_p550_equivalence(self, seed):
        finding = fuzz_scenario(seed, length=25, platform=PREMIER_P550)
        assert finding is None, str(finding)

    def test_campaign_helper(self):
        assert fuzz_campaign(range(50, 56), length=20) == []


class TestFuzzerSensitivity:
    """Non-vacuity: the fuzzer flags OS-visible virtualization defects."""

    def _first_finding(self, seeds=range(0, 12), **kwargs):
        for seed in seeds:
            finding = fuzz_scenario(seed, length=30, **kwargs)
            if finding is not None:
                return finding
        return None

    def test_detects_corrupted_misaligned_emulation(self, monkeypatch):
        """A wrong-byte fast-path emulation is an OS-visible hole."""
        from repro.core.offload import FastPath

        original = FastPath._handle_misaligned

        def corrupted(self, hart):
            handled = original(self, hart)
            if handled:
                # Flip a bit in the destination register post-emulation.
                from repro.isa.decoder import decode

                try:
                    # mepc still addresses the emulated instruction.
                    instr = decode(self.machine.ram.read(hart.state.csr.mepc, 4))
                    if instr.is_load and instr.rd:
                        hart.state.set_xreg(
                            instr.rd, hart.state.get_xreg(instr.rd) ^ 1
                        )
                except Exception:
                    pass
            return handled

        monkeypatch.setattr(FastPath, "_handle_misaligned", corrupted)
        finding = self._first_finding()
        assert finding is not None

    def test_detects_wrong_sbi_result(self, monkeypatch):
        """An offload handler returning wrong errors is OS-visible."""
        from repro.core.offload import FastPath
        from repro.sbi.types import SbiRet

        def broken_set_timer(self, hart, deadline):
            hart.charge(10)
            return SbiRet.success(0xBAD)  # wrong: value must be 0

        monkeypatch.setattr(FastPath, "_sbi_set_timer", broken_set_timer)
        # Breaking set_timer stalls the tick wait loop -> halt divergence.
        finding = self._first_finding(seeds=range(0, 8))
        assert finding is not None

    def test_latent_bugs_are_component_level(self):
        """Some §6.5 bugs (e.g. mret leaving MPP set) do not perturb any
        OS-visible behaviour in these scenarios — exactly why the paper
        checks faithful emulation at state granularity rather than relying
        on end-to-end testing.  The component checker catches them
        (test_seeded_bugs); the fuzzer legitimately may not."""
        with bugs.seeded("mret_mpp_not_cleared"):
            findings = fuzz_campaign(range(0, 4), length=20, offload=False)
        assert isinstance(findings, list)  # documented, not asserted-empty


class TestExecutionBudgets:
    """A diverging case must report its seed, not hang the campaign."""

    def test_dispatch_budget_reports_budget_crash(self):
        from repro.verif.fuzz import Scenario, _run_scenario

        scenario = Scenario(seed=0, length=10)
        observation = _run_scenario(scenario, virtualized=True,
                                    max_dispatches=5)
        assert observation.crashed is not None
        assert observation.crashed.startswith("budget")

    def test_wall_clock_budget_reports_budget_crash(self):
        from repro.verif.fuzz import Scenario, _run_scenario

        scenario = Scenario(seed=0, length=30)
        observation = _run_scenario(scenario, virtualized=True,
                                    wall_seconds=0.0)
        assert observation.crashed is not None
        assert observation.crashed.startswith("budget")

    def test_identical_hangs_still_produce_a_finding(self):
        finding = fuzz_scenario(0, length=10, max_dispatches=5)
        assert finding is not None
        assert "budget" in str(finding)

    def test_generous_budgets_leave_clean_seeds_clean(self):
        assert fuzz_scenario(50, length=20) is None
