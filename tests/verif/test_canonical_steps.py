"""One canonical step encoding for decoder, shrinker, corpus, and replay.

``canonical_steps`` is the shared normal form: JSON round-trips through
a bundle, a corpus entry, or a shrink candidate must reproduce the
identical scenario, and a typo'd action must fail loudly instead of
silently no-op'ing through the workload dispatch table.
"""

from __future__ import annotations

import pytest

from repro.verif.fuzz import (
    ACTION_NAMES,
    ACTIONS,
    EXTENDED_ACTIONS,
    Scenario,
    canonical_steps,
)


class TestCanonicalSteps:
    def test_tuples_lists_and_json_forms_normalize_identically(self):
        as_tuples = (("read_time", 3), ("compute", 100))
        as_lists = [["read_time", 3], ["compute", 100]]
        assert canonical_steps(as_tuples) == canonical_steps(as_lists)
        assert canonical_steps(as_tuples) == as_tuples

    def test_operands_masked_to_32_bits(self):
        assert canonical_steps([("compute", (1 << 35) + 9)]) == (
            ("compute", 9),
        )
        assert canonical_steps([("compute", (1 << 32) - 1)]) == (
            ("compute", (1 << 32) - 1),
        )

    def test_unknown_action_raises(self):
        with pytest.raises(ValueError, match="unknown fuzz action"):
            canonical_steps([("read_time", 1), ("frobnicate", 2)])

    def test_idempotent(self):
        steps = canonical_steps([("send_ipi", 1), ("set_timer", 40)])
        assert canonical_steps(steps) == steps

    def test_every_known_action_is_accepted(self):
        steps = [(name, 1) for name in ACTION_NAMES]
        assert canonical_steps(steps) == tuple((name, 1)
                                               for name in ACTION_NAMES)


class TestScenarioUsesCanonicalForm:
    def test_explicit_steps_are_canonicalized(self):
        scenario = Scenario(seed=0, length=2,
                            steps=(("read_time", (1 << 33) + 5),))
        assert scenario.actions() == [("read_time", 5)]

    def test_decode_is_already_canonical(self):
        decoded = Scenario(seed=99, length=50).actions()
        assert tuple(decoded) == canonical_steps(decoded)

    def test_decoded_actions_stay_in_the_base_alphabet(self):
        # Adding actions to the decoder would remap every existing
        # seed's decode; extended actions must stay mutation-only.
        base = {name for name, _weight in ACTIONS}
        extended = {name for name, _weight in EXTENDED_ACTIONS}
        assert not (base & extended)
        for seed in (0, 1, 7, 123, 9999):
            decoded = {action for action, _operand
                       in Scenario(seed=seed, length=64).actions()}
            assert decoded <= base
