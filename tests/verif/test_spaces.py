"""Exact-membership pins for the verification input-space generators.

The sweeps in Table 2 (and their campaign shards) are only as strong as
the spaces they enumerate, and those spaces are silent dependencies: a
generator that quietly drops half its patterns still produces a green
"0 divergences over N inputs" report.  These tests pin the *exact*
membership of each structured space — element by element, not just
counts — so any change to what gets swept is a visible diff here.
"""

from __future__ import annotations

import itertools

from repro.isa import constants as c
from repro.verif.spaces import (
    BOUNDARY_VALUES,
    bit_walk,
    csr_value_space,
    interrupt_space,
    mstatus_space,
)


class TestBitWalk:
    def test_default_width_is_every_single_bit_of_64(self):
        assert list(bit_walk()) == [1 << i for i in range(64)]

    def test_narrow_width_yields_exactly_that_many_bits(self):
        assert list(bit_walk(8)) == [1, 2, 4, 8, 16, 32, 64, 128]
        assert list(bit_walk(1)) == [1]
        assert list(bit_walk(0)) == []

    def test_all_values_distinct_powers_of_two(self):
        values = list(bit_walk())
        assert len(set(values)) == 64
        assert all(v & (v - 1) == 0 and v for v in values)


class TestCsrValueSpace:
    def test_structured_prefix_is_boundaries_then_bit_walk(self):
        values = csr_value_space(samples=32, seed=2025)
        structured = len(BOUNDARY_VALUES) + 64
        assert tuple(values[: len(BOUNDARY_VALUES)]) == BOUNDARY_VALUES
        assert values[len(BOUNDARY_VALUES): structured] == list(bit_walk())
        assert len(values) == structured + 32

    def test_sampling_is_deterministic_in_the_seed(self):
        assert csr_value_space() == csr_value_space()
        a = csr_value_space(samples=8, seed=1)
        b = csr_value_space(samples=8, seed=2)
        assert a[: len(BOUNDARY_VALUES) + 64] == b[: len(BOUNDARY_VALUES) + 64]
        assert a[-8:] != b[-8:]

    def test_samples_stay_in_64_bits(self):
        assert all(0 <= v < (1 << 64) for v in csr_value_space(samples=64))


class TestMstatusSpace:
    @staticmethod
    def _expected():
        # Independent reconstruction of the documented space: the full
        # MPP x {MIE, SIE, MPRV, TW, TVM} product, then each value of
        # the first product block re-issued with one extra field OR'd
        # in.  Kept deliberately separate from the implementation so a
        # generator edit shows up as a membership diff.
        product = []
        for mpp in range(4):
            for mie, sie, mprv, tw, tvm in itertools.product((0, 1), repeat=5):
                product.append(
                    mpp << c.MSTATUS_MPP_SHIFT
                    | mie << 3
                    | sie << 1
                    | mprv << 17
                    | tw << 21
                    | tvm << 20
                )
        extras = [c.MSTATUS_MPIE, c.MSTATUS_SPIE, c.MSTATUS_SPP,
                  c.MSTATUS_FS, c.MSTATUS_SUM, c.MSTATUS_MXR,
                  c.MSTATUS_TSR, c.MSTATUS_SD]
        values = list(product)
        for extra in extras:
            values.extend(v | extra for v in product[:16])
        return values

    def test_exact_membership_and_order(self):
        assert mstatus_space() == self._expected()

    def test_counts(self):
        values = mstatus_space()
        # 4 MPP values x 2^5 control-bit combinations, then 8 extra
        # fields each over the first 16 product entries.
        assert len(values) == 4 * 32 + 8 * 16

    def test_every_mpp_value_appears(self):
        mpps = {(v >> c.MSTATUS_MPP_SHIFT) & 0x3 for v in mstatus_space()}
        assert mpps == {0, 1, 2, 3}

    def test_extra_field_blocks_carry_their_bit(self):
        values = mstatus_space()
        extras = (c.MSTATUS_MPIE, c.MSTATUS_SPIE, c.MSTATUS_SPP,
                  c.MSTATUS_FS, c.MSTATUS_SUM, c.MSTATUS_MXR,
                  c.MSTATUS_TSR, c.MSTATUS_SD)
        for index, extra in enumerate(extras):
            block = values[128 + 16 * index: 128 + 16 * (index + 1)]
            assert len(block) == 16
            assert all(v & extra == extra for v in block)


class TestInterruptSpace:
    INTERRUPT_BITS = [1 << irq for irq in c.INTERRUPT_PRIORITY]

    @classmethod
    def _mask(cls, selector: int) -> int:
        return sum(bit for i, bit in enumerate(cls.INTERRUPT_BITS)
                   if selector >> i & 1)

    def test_full_space_exact_membership(self):
        expected = []
        for mip_selector in range(64):
            mip = self._mask(mip_selector)
            for mie_selector in (0, 0b111111, 0b101010, 0b010101,
                                 mip_selector):
                mie = self._mask(mie_selector)
                for global_mie in (False, True):
                    for global_sie in (False, True):
                        expected.append(
                            (mip, mie, c.MIDELEG_MASK, global_mie,
                             global_sie)
                        )
        assert list(interrupt_space()) == expected
        assert len(expected) == 64 * 5 * 2 * 2

    def test_selector_restriction_is_exact(self):
        # Sharding passes an explicit selector subset; the shard must
        # contain exactly that subset's tuples, in selector order.
        got = list(interrupt_space(mip_selectors=[5, 0]))
        expected = []
        for selector in (5, 0):
            mip = self._mask(selector)
            for mie_selector in (0, 0b111111, 0b101010, 0b010101, selector):
                mie = self._mask(mie_selector)
                for global_mie in (False, True):
                    for global_sie in (False, True):
                        expected.append((mip, mie, c.MIDELEG_MASK,
                                         global_mie, global_sie))
        assert got == expected
        # Selector 5 = priority positions 0 and 2 = MEI | MTI pending.
        assert got[0][0] == (1 << c.IRQ_MEI) | (1 << c.IRQ_MTI)

    def test_shards_reassemble_the_full_space(self):
        whole = list(interrupt_space())
        shards = [list(interrupt_space(mip_selectors=range(lo, lo + 16)))
                  for lo in (0, 16, 32, 48)]
        assert [t for shard in shards for t in shard] == whole

    def test_mideleg_is_always_the_full_s_mask(self):
        assert {t[2] for t in interrupt_space()} == {c.MIDELEG_MASK}

    def test_mip_patterns_cover_all_64_subsets(self):
        mips = {t[0] for t in interrupt_space()}
        assert len(mips) == 64
        assert all(mip & ~c.MIP_MASK == 0 for mip in mips)
