"""§6.5 regression suite: the checkers catch every historical bug class.

Each bug the paper reports finding with model checking is re-introduced
behind a flag (:mod:`repro.core.bugs`); the corresponding checker must
flag a divergence — proving the verification harness is not vacuous.
"""

import pytest

from repro.core import bugs
from repro.isa import constants as c
from repro.isa.instructions import Instruction
from repro.spec.platform import VISIONFIVE2
from repro.verif import (
    StateDescription,
    mstatus_space,
    run_emulation_check,
    virtual_platform,
)

PLATFORM = virtual_platform(VISIONFIVE2, virtual_pmp_count=4)


def mstatus_write_sweep(task):
    # Field-product values plus raw boundary patterns with bits *outside*
    # the writable mask — those are what a broken legalization mask leaks.
    operands = list(mstatus_space())[:64] + [
        (1 << 64) - 1, 1 << 63, 1 << 40, 0xAAAA_AAAA_AAAA_AAAA,
    ]
    descriptions = [
        StateDescription(gprs=[0] + [operand] * 31)
        for operand in operands
    ]
    return run_emulation_check(
        PLATFORM, descriptions,
        [Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_MSTATUS)],
        task=task,
    )


class TestBugsAreCaught:
    def test_vpc_overflow(self):
        """'a virtual PC overflow' — mepc+4 computed without truncation."""
        descriptions = [StateDescription(pc=0xFFFF_FFFF_FFFF_FFFC)]
        instructions = [Instruction("csrrs", rd=1, rs1=0, csr=c.CSR_MSCRATCH)]
        with bugs.seeded("vpc_overflow"):
            report = run_emulation_check(PLATFORM, descriptions, instructions,
                                         task="vpc")
        assert not report.passed
        assert any(d.field == "pc" for d in report.divergences)

    def test_pmp_w_without_r_accepted(self):
        """'accepting the reserved combination of W=1 and R=0'."""
        descriptions = [StateDescription(gprs=[0] + [0x1A] * 31)]
        instructions = [Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_PMPCFG0)]
        with bugs.seeded("pmp_w_without_r"):
            report = run_emulation_check(PLATFORM, descriptions, instructions,
                                         task="pmp-wr")
        assert not report.passed

    def test_legalization_parenthesis(self):
        """'an invalid legalization bitmask due to a misplaced parenthesis'."""
        with bugs.seeded("legalization_parenthesis"):
            report = mstatus_write_sweep("paren")
        assert not report.passed

    def test_vpmp_out_of_range(self):
        """'overwrite the PMP configuration beyond the allowed number of
        virtual PMPs'."""
        descriptions = [StateDescription(gprs=[0] + [0x1F1F1F1F1F1F1F1F] * 31)]
        instructions = [Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_PMPCFG0)]
        with bugs.seeded("vpmp_out_of_range"):
            report = run_emulation_check(PLATFORM, descriptions, instructions,
                                         task="vpmp-range")
        assert not report.passed
        assert any(d.field == "pmpcfg" for d in report.divergences)

    def test_mret_mpp_not_cleared(self):
        """'flawed mret emulation'."""
        descriptions = [
            StateDescription(csr_values={"mstatus": (1 << 11) | c.MSTATUS_MPIE,
                                         "mepc": 0x8400_0000})
        ]
        with bugs.seeded("mret_mpp_not_cleared"):
            report = run_emulation_check(
                PLATFORM, descriptions, [Instruction("mret")], task="mret-mpp"
            )
        assert not report.passed
        assert any(d.field == "mstatus" for d in report.divergences)

    def test_mpp_invalid_accepted(self):
        """'a long tail of edge cases in CSRs bit patterns'."""
        descriptions = [StateDescription(gprs=[0] + [2 << 11] * 31)]
        instructions = [Instruction("csrrw", rd=1, rs1=2, csr=c.CSR_MSTATUS)]
        with bugs.seeded("mpp_invalid_accepted"):
            report = run_emulation_check(PLATFORM, descriptions, instructions,
                                         task="mpp")
        assert not report.passed

    def test_interrupt_loss_system_level(self):
        """'losses of virtual interrupts can cause system stalls' — with
        the post-emulation interrupt check skipped, the pending-but-never-
        injected timer interrupt storms the monitor and the RTOS guest
        makes no progress; the dispatch watchdog detects the livelock."""
        from repro.firmware.zephyr import ZephyrFirmware
        from repro.hart.machine import Machine
        from repro.hart.program import ProtocolError
        from repro.core.config import MiralisConfig
        from repro.core.miralis import Miralis
        from repro.policy.default import DefaultPolicy
        from repro.system import memory_regions

        def run_zephyr():
            machine = Machine(VISIONFIVE2)
            machine.max_dispatches = 100_000  # livelock watchdog
            regions = memory_regions(VISIONFIVE2)
            zephyr = ZephyrFirmware("zephyr", regions["firmware"], machine,
                                    num_ticks=3)
            miralis = Miralis(machine, regions["miralis"], zephyr,
                              MiralisConfig(), DefaultPolicy())
            machine.register(zephyr)
            machine.register(miralis)
            try:
                reason = machine.boot(entry=miralis.region.base)
            except ProtocolError:
                reason = "livelock: dispatch limit exceeded"
            return reason, zephyr

        with bugs.seeded("interrupt_loss"):
            reason, zephyr = run_zephyr()
        assert not zephyr.suite_passed() or "complete" not in reason

        # Control: without the bug, the suite passes.
        reason, zephyr = run_zephyr()
        assert zephyr.suite_passed() and "complete" in reason


class TestCleanImplementationPasses:
    """The same sweeps pass with no bug seeded (non-vacuity control)."""

    def test_mstatus_sweep_clean(self):
        report = mstatus_write_sweep("clean")
        assert report.passed, report.first_failures()

    def test_known_bug_registry_documented(self):
        assert set(bugs.KNOWN_BUGS) >= {
            "vpc_overflow", "pmp_w_without_r", "legalization_parenthesis",
            "vpmp_out_of_range", "interrupt_loss", "mret_mpp_not_cleared",
        }

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            with bugs.seeded("not_a_bug"):
                pass

    def test_seeding_is_scoped(self):
        with bugs.seeded("vpc_overflow"):
            assert bugs.is_active("vpc_overflow")
        assert not bugs.is_active("vpc_overflow")
